// Package powerapi is the HTTP/JSON gateway onto the power-telemetry
// plane: the production front door the paper's Python client script
// grows into. It attaches to the root broker (like a client holding the
// system instance's local socket) and exposes job power data, node
// sample windows, cluster health, and live SSE sample streams.
//
// Three mechanisms keep root-broker load sublinear in HTTP client count,
// which is what makes the gateway safe to put in front of a whole
// center's dashboards:
//
//   - response caching: rendered responses are cached with a TTL and
//     evicted LRU; job-scoped entries are invalidated the moment the
//     job's finish event arrives, so completion is never stale.
//   - request coalescing: concurrent cache misses on one key elect a
//     leader to perform the single upstream TBON reduce; everyone else
//     waits for that result (hand-rolled singleflight).
//   - rate limiting: per-client token buckets turn overload into 429 +
//     Retry-After instead of a pile-up on the broker.
//
// Requests carry context deadlines end-to-end: the HTTP request context,
// bounded by Config.RequestTimeout, flows through powermon.Client's
// context methods into broker RPC timeouts.
package powerapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fluxpower/internal/core/powermon"
	"fluxpower/internal/fanout"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/flux/msg"
	"fluxpower/internal/query"
	"fluxpower/internal/stats"
)

// Config parameterizes a Gateway. The zero value of every field except
// Broker is usable; defaults are filled in by New.
type Config struct {
	// Broker is the attach point — normally the root, like the system
	// instance's local socket. Required unless Hub is set (the hub's
	// broker is used, and setting both to different brokers is an error).
	Broker *broker.Broker

	// Hub is the shared broadcast plane. Replicated gateway tiers pass
	// the same hub to every replica: they share its single root
	// attachment, its per-job fan-out rings, and its one set of cache
	// invalidation subscriptions. Nil means this gateway creates and
	// owns a private hub (closed with the gateway).
	Hub *fanout.Hub

	// RequestTimeout bounds each request's upstream work. Default 5s.
	RequestTimeout time.Duration
	// CacheTTL is the response-cache lifetime for running-job and
	// cluster-level answers. Default 2s (one sampling interval).
	CacheTTL time.Duration
	// CacheTTLDone is the lifetime for finished jobs, whose telemetry
	// window is immutable. Default 5m.
	CacheTTLDone time.Duration
	// CacheSize is the LRU capacity in entries. Default 1024; negative
	// disables caching.
	CacheSize int

	// RateLimit is the per-client sustained request rate in requests per
	// second; 0 disables limiting. RateBurst is the bucket depth
	// (default max(1, 2*RateLimit)).
	RateLimit float64
	RateBurst int

	// TrustProxy honors X-Forwarded-For for rate-limit client identity.
	// Leave false (the default) unless a trusted proxy terminates every
	// connection — otherwise clients can rotate the header to mint
	// themselves fresh buckets.
	TrustProxy bool

	// Tenants enables bearer-token authentication and per-tenant quotas
	// (aggregate request rate and concurrent SSE streams). Empty means
	// anonymous mode: no auth required, per-client limits only.
	Tenants []Tenant

	// Now overrides the clock (tests). Default time.Now. Cache TTLs and
	// rate-limit refill are measured on this clock.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 2 * time.Second
	}
	if c.CacheTTLDone <= 0 {
		c.CacheTTLDone = 5 * time.Minute
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.RateBurst <= 0 {
		c.RateBurst = int(2 * c.RateLimit)
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Metrics is a snapshot of the gateway's counters, served at
// /v1/metrics. UpstreamCalls over Requests is the gateway's RPC
// amplification at the HTTP layer; the serve experiment measures the
// broker-side equivalent.
type Metrics struct {
	Requests      uint64 `json:"requests"`
	RateLimited   uint64 `json:"rate_limited"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	Coalesced     uint64 `json:"coalesced"`
	UpstreamCalls uint64 `json:"upstream_calls"`
	Errors4xx     uint64 `json:"errors_4xx"`
	Errors5xx     uint64 `json:"errors_5xx"`

	AuthFailures        uint64 `json:"auth_failures"`
	QuotaStreamRejected uint64 `json:"quota_stream_rejected"`

	StreamsStarted  uint64 `json:"streams_started"`
	StreamsEnded    uint64 `json:"streams_ended"`
	SamplesStreamed uint64 `json:"samples_streamed"`
	SamplesDropped  uint64 `json:"samples_dropped"`

	CacheEntries int `json:"cache_entries"`

	// Request-latency quantiles in milliseconds, from a log-bucketed
	// histogram over every served request (upper-bound estimates; 0
	// until the first request completes).
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// StoreMetrics summarizes every rank's durable tsdb store for
// /v1/metrics: capacity planning (bytes on disk, segment and block
// counts) and durability health (worst fsync lag, recovery and
// torn-record totals) in one glance.
type StoreMetrics struct {
	Ranks          int     `json:"ranks"`
	Segments       int     `json:"segments"`
	SealedBlocks   int     `json:"sealed_blocks"`
	BytesOnDisk    int64   `json:"bytes_on_disk"`
	MaxFsyncLagSec float64 `json:"max_fsync_lag_sec"`
	Recoveries     int     `json:"recoveries"`
	TornRecords    int     `json:"torn_records"`
}

// metricsResponse is the /v1/metrics body: the gateway's own counters,
// the shared broadcast plane's counters, and, when any rank runs a
// durable store, the fleet's store summary.
type metricsResponse struct {
	Metrics
	Fanout *fanout.Metrics `json:"fanout,omitempty"`
	Store  *StoreMetrics   `json:"store,omitempty"`
}

// Gateway is the HTTP handler. Create with New, serve with any
// http.Server (or call ServeHTTP directly in tests and simulations),
// and stop with Close, which drains in-flight requests and streams.
type Gateway struct {
	cfg Config
	pm  *powermon.Client
	qc  *query.Client
	mux *http.ServeMux

	// hub is the broadcast plane: the shared root attachment, the
	// per-job SSE fan-out rings, and the lifecycle subscriptions that
	// drive cache invalidation. ownHub marks a hub this gateway created
	// for itself (and must close); a replicated tier shares one hub.
	hub    *fanout.Hub
	ownHub bool
	// unregister removes this replica from the hub's invalidation
	// broadcast.
	unregister func()

	// brokerMu serializes all broker-bound work. It points at the hub's
	// upstream mutex: every replica sharing a hub shares ONE attachment
	// to the broker — the moral equivalent of the single local-socket
	// connection a real Flux client multiplexes — and in simulation the
	// scheduler behind the broker is single-threaded, so concurrent HTTP
	// handlers must take turns upstream. Coalescing and caching make the
	// serialized section rare and short.
	brokerMu *sync.Mutex

	cache    *responseCache
	flight   *flightGroup
	limiters *limiterPool

	// tenants is the configured tenant set (authenticated mode when
	// non-empty); tenantLimiters holds the per-tenant aggregate buckets,
	// separate from the per-client pool so neither evicts the other.
	tenants        []*tenantState
	tenantLimiters *limiterPool

	requests, rateLimited    atomic.Uint64
	coalesced, upstreamCalls atomic.Uint64
	errors4xx, errors5xx     atomic.Uint64
	authFailures             atomic.Uint64
	quotaStreams             atomic.Uint64
	streamsStarted           atomic.Uint64
	streamsEnded             atomic.Uint64
	samplesStreamed          atomic.Uint64
	samplesDropped           atomic.Uint64

	done      chan struct{} // closed by Close; SSE loops watch it
	closing   atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup // in-flight requests, incl. streams

	// Store-summary snapshot for /v1/metrics, refreshed upstream at most
	// once per CacheTTL and served stale (best-effort) on fetch failure,
	// so a metrics scrape never amplifies into a status fan-out storm.
	storeMu  sync.Mutex
	storeVal *StoreMetrics
	storeAt  time.Time

	// Request-latency sketch behind /v1/metrics quantiles. Log-bucketed
	// (10 µs .. 60 s) so merges and quantile reads stay cheap.
	latMu   sync.Mutex
	latency *stats.Histogram
}

// New builds a gateway on the broadcast hub (creating a private one
// from cfg.Broker when cfg.Hub is nil) and registers for the job
// lifecycle events that drive cache invalidation.
func New(cfg Config) (*Gateway, error) {
	ownHub := false
	if cfg.Hub == nil {
		if cfg.Broker == nil {
			return nil, errors.New("powerapi: Config.Broker is required")
		}
		hub, err := fanout.New(fanout.Config{Broker: cfg.Broker, Now: cfg.Now})
		if err != nil {
			return nil, err
		}
		cfg.Hub = hub
		ownHub = true
	}
	if cfg.Broker == nil {
		cfg.Broker = cfg.Hub.Broker()
	} else if cfg.Broker != cfg.Hub.Broker() {
		return nil, errors.New("powerapi: Config.Broker differs from Config.Hub's broker")
	}
	cfg = cfg.withDefaults()
	gw := &Gateway{
		cfg:      cfg,
		pm:       powermon.NewClient(cfg.Broker),
		qc:       query.NewClient(cfg.Broker),
		hub:      cfg.Hub,
		ownHub:   ownHub,
		brokerMu: cfg.Hub.UpstreamMu(),
		cache:    newResponseCache(cfg.CacheSize, cfg.Now),
		flight:   newFlightGroup(),
		limiters: newLimiterPool(cfg.RateLimit, cfg.RateBurst, cfg.Now),
		latency:  stats.NewHistogram(0.01, 60_000, 64),
		done:     make(chan struct{}),
	}
	for _, t := range cfg.Tenants {
		ts := &tenantState{Tenant: t}
		gw.tenants = append(gw.tenants, ts)
		if gw.tenantLimiters == nil {
			gw.tenantLimiters = newLimiterPool(0, 1, cfg.Now)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs", gw.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}/power", gw.handleJobPower)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", gw.handleJobStream)
	mux.HandleFunc("GET /v1/nodes/{rank}/power", gw.handleNodePower)
	mux.HandleFunc("GET /v1/query", gw.handleQuery)
	mux.HandleFunc("GET /v1/cluster/status", gw.handleClusterStatus)
	mux.HandleFunc("GET /v1/metrics", gw.handleMetrics)
	gw.mux = mux

	// A finished job's cached entries are stale the instant the finish
	// event lands: the telemetry window froze, and the list's state
	// column changed. Start/submit events only perturb the list. The hub
	// holds the bus subscriptions once and broadcasts to every replica,
	// so a replicated tier still costs the broker one set.
	gw.unregister = gw.hub.Register(fanout.Replica{
		InvalidateJob:  gw.cache.invalidateJob,
		InvalidateList: func() { gw.cache.invalidateJob(listCacheID) },
	})
	return gw, nil
}

// Hub exposes the gateway's broadcast plane, so drivers can attach
// additional replicas or read fan-out metrics.
func (gw *Gateway) Hub() *fanout.Hub { return gw.hub }

// listCacheID is the pseudo-job id under which the /v1/jobs listing is
// cached, so lifecycle events can invalidate it like any job entry.
const listCacheID = ^uint64(0)

// Close stops accepting requests (new ones get 503), signals SSE
// streams to end, and blocks until every in-flight request has drained.
// Idempotent; every call blocks until the drain completes.
func (gw *Gateway) Close() {
	gw.closeOnce.Do(func() {
		gw.closing.Store(true)
		close(gw.done)
		gw.unregister()
	})
	gw.wg.Wait()
	if gw.ownHub {
		gw.hub.Close()
	}
}

// Sync runs fn while holding the gateway's broker attachment. Drivers
// that advance simulated time concurrently with HTTP traffic (the
// flux-power-api demo binary, chaos soaks) use this so scheduler
// dispatch and gateway RPCs never interleave.
func (gw *Gateway) Sync(fn func()) {
	gw.brokerMu.Lock()
	defer gw.brokerMu.Unlock()
	fn()
}

// Metrics returns a snapshot of the gateway's counters.
func (gw *Gateway) Metrics() Metrics {
	hits, misses, entries := gw.cache.stats()
	gw.latMu.Lock()
	p50 := gw.latency.Quantile(0.50)
	p95 := gw.latency.Quantile(0.95)
	p99 := gw.latency.Quantile(0.99)
	gw.latMu.Unlock()
	return Metrics{
		LatencyP50Ms:        p50,
		LatencyP95Ms:        p95,
		LatencyP99Ms:        p99,
		AuthFailures:        gw.authFailures.Load(),
		QuotaStreamRejected: gw.quotaStreams.Load(),

		Requests:        gw.requests.Load(),
		RateLimited:     gw.rateLimited.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		Coalesced:       gw.coalesced.Load(),
		UpstreamCalls:   gw.upstreamCalls.Load(),
		Errors4xx:       gw.errors4xx.Load(),
		Errors5xx:       gw.errors5xx.Load(),
		StreamsStarted:  gw.streamsStarted.Load(),
		StreamsEnded:    gw.streamsEnded.Load(),
		SamplesStreamed: gw.samplesStreamed.Load(),
		SamplesDropped:  gw.samplesDropped.Load(),
		CacheEntries:    entries,
	}
}

// ServeHTTP implements http.Handler: admission control (shutdown,
// rate limit), then route dispatch.
func (gw *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	gw.requests.Add(1)
	began := gw.cfg.Now()
	defer func() {
		ms := float64(gw.cfg.Now().Sub(began)) / float64(time.Millisecond)
		gw.latMu.Lock()
		gw.latency.Observe(ms)
		gw.latMu.Unlock()
	}()
	if gw.closing.Load() {
		http.Error(w, `{"error":"shutting down"}`, http.StatusServiceUnavailable)
		return
	}
	gw.wg.Add(1)
	defer gw.wg.Done()
	// Re-check after registering with the drain group: a Close between
	// the first check and wg.Add must not let the request race the wait.
	if gw.closing.Load() {
		http.Error(w, `{"error":"shutting down"}`, http.StatusServiceUnavailable)
		return
	}
	tenant, ok := gw.authenticate(r)
	if !ok {
		gw.unauthorized(w)
		return
	}
	if tenant != nil {
		// The tenant's aggregate bucket sits above the per-client ones:
		// a tenant cannot exceed its contracted rate by fanning out
		// across many client addresses.
		if ok, retryAfter := gw.tenantLimiters.allowWith("tenant:"+tenant.Name,
			tenant.RateLimit, float64(tenant.RateBurst)); !ok {
			gw.tooManyRequests(w, retryAfter)
			return
		}
		r = r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tenant))
	}
	if ok, retryAfter := gw.limiters.allow(clientKey(r, gw.cfg.TrustProxy)); !ok {
		gw.tooManyRequests(w, retryAfter)
		return
	}
	gw.mux.ServeHTTP(w, r)
}

// tenantCtxKey carries the authenticated tenant through the request
// context to the stream handler's quota check.
type tenantCtxKey struct{}

// requestTenant recovers the authenticated tenant (nil in anonymous
// mode).
func requestTenant(r *http.Request) *tenantState {
	t, _ := r.Context().Value(tenantCtxKey{}).(*tenantState)
	return t
}

// tooManyRequests rejects a rate-limited request with Retry-After.
func (gw *Gateway) tooManyRequests(w http.ResponseWriter, retryAfter time.Duration) {
	gw.rateLimited.Add(1)
	secs := int(retryAfter / time.Second)
	if retryAfter%time.Second != 0 || secs == 0 {
		secs++ // round up; Retry-After is integral seconds ≥ 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, `{"error":"rate limit exceeded"}`, http.StatusTooManyRequests)
}

// --- response plumbing ---

// writeCached replays a rendered response.
func (gw *Gateway) writeCached(w http.ResponseWriter, v cached) {
	w.Header().Set("Content-Type", v.contentType)
	w.Header().Set("X-Complete", strconv.FormatBool(v.complete))
	if v.source != "" {
		w.Header().Set("X-Source", v.source)
	}
	w.WriteHeader(v.status)
	_, _ = w.Write(v.body)
}

// fail maps an upstream error onto an HTTP status:
//
//	ENOENT            → 404 (no such job)
//	EINVAL            → 400 (the instance rejected the parameters)
//	deadline exceeded → 504 (the client's budget ran out)
//	anything else     → 502 (root unreachable, service missing, timeout)
func (gw *Gateway) fail(w http.ResponseWriter, err error) {
	status := http.StatusBadGateway
	var me *msg.Error
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; nothing we write will be read. 499 is
		// the conventional (nonstandard) marker, kept out of the 5xx
		// counter since the gateway did nothing wrong.
		status = 499
	case errors.As(err, &me):
		switch me.Errnum {
		case msg.ENOENT:
			status = http.StatusNotFound
		case msg.EINVAL:
			status = http.StatusBadRequest
		}
	}
	switch {
	case status >= 500:
		gw.errors5xx.Add(1)
	case status >= 400:
		gw.errors4xx.Add(1)
	}
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

// badRequest reports a client-side parameter error without consulting
// upstream.
func (gw *Gateway) badRequest(w http.ResponseWriter, format string, args ...any) {
	gw.errors4xx.Add(1)
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_, _ = w.Write(append(body, '\n'))
}

// fetched pairs a rendered response with the TTL it should be cached
// under (≤ 0 means do not cache).
type fetched struct {
	val cached
	ttl time.Duration
}

// cachedFetch is the shared read path: cache lookup, then coalesced
// upstream fetch, then fill. fetch runs with the gateway's broker
// attachment held and a context bounded by RequestTimeout.
func (gw *Gateway) cachedFetch(ctx context.Context, key string, jobID uint64,
	fetch func(ctx context.Context) (fetched, error)) (cached, error) {
	if v, ok := gw.cache.get(key); ok {
		return v, nil
	}
	v, err, shared := gw.flight.do(key, func() (cached, error) {
		// The leader re-checks the cache: a previous leader may have
		// filled it between our miss and winning the flight.
		if v, ok := gw.cache.get(key); ok {
			return v, nil
		}
		gw.upstreamCalls.Add(1)
		fctx, cancel := context.WithTimeout(ctx, gw.cfg.RequestTimeout)
		defer cancel()
		gw.brokerMu.Lock()
		f, err := fetch(fctx)
		gw.brokerMu.Unlock()
		if err != nil {
			return cached{}, err
		}
		gw.cache.put(key, jobID, f.val, f.ttl)
		return f.val, nil
	})
	if shared {
		gw.coalesced.Add(1)
	}
	return v, err
}

// jsonBody renders v as a cached JSON response.
func jsonBody(v any, complete bool) (cached, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		return cached{}, err
	}
	return cached{
		body:        buf.Bytes(),
		contentType: "application/json",
		status:      http.StatusOK,
		complete:    complete,
	}, nil
}

// --- handlers ---

// jobsResponse is the /v1/jobs body.
type jobsResponse struct {
	Jobs []job.Record `json:"jobs"`
}

func (gw *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	v, err := gw.cachedFetch(r.Context(), "jobs", listCacheID, func(ctx context.Context) (fetched, error) {
		resp, err := gw.cfg.Broker.CallContext(ctx, msg.NodeAny, "job-manager.list", nil)
		if err != nil {
			return fetched{}, err
		}
		var body jobsResponse
		if err := resp.Unmarshal(&body); err != nil {
			return fetched{}, err
		}
		if body.Jobs == nil {
			body.Jobs = []job.Record{}
		}
		val, err := jsonBody(body, true)
		return fetched{val: val, ttl: gw.cfg.CacheTTL}, err
	})
	if err != nil {
		gw.fail(w, err)
		return
	}
	gw.writeCached(w, v)
}

func (gw *Gateway) handleJobPower(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		gw.badRequest(w, "job id %q is not a number", r.PathValue("id"))
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "aggregate"
	}
	if mode != "raw" && mode != "aggregate" {
		gw.badRequest(w, "mode %q: want raw or aggregate", mode)
		return
	}
	key := "power:" + strconv.FormatUint(id, 10) + ":" + mode
	v, err := gw.cachedFetch(r.Context(), key, id, func(ctx context.Context) (fetched, error) {
		switch mode {
		case "raw":
			jp, err := gw.pm.QueryContext(ctx, id)
			if err != nil {
				return fetched{}, err
			}
			var buf bytes.Buffer
			if err := powermon.WriteCSV(&buf, jp); err != nil {
				return fetched{}, err
			}
			val := cached{
				body:        buf.Bytes(),
				contentType: "text/csv",
				status:      http.StatusOK,
				complete:    jp.Complete(),
			}
			for _, n := range jp.Nodes {
				if n.Source == "tsdb" {
					val.source = "tsdb"
					break
				}
			}
			return fetched{val: val, ttl: gw.jobTTL(jp.EndSec, val.complete)}, nil
		default:
			ja, err := gw.pm.QueryAggregateContext(ctx, id)
			if err != nil {
				return fetched{}, err
			}
			complete := ja.Complete && !ja.Partial
			val, err := jsonBody(ja, complete)
			return fetched{val: val, ttl: gw.jobTTL(ja.EndSec, complete)}, err
		}
	})
	if err != nil {
		gw.fail(w, err)
		return
	}
	gw.writeCached(w, v)
}

// jobTTL picks the cache lifetime for a job answer: long for a finished
// complete window (immutable), one sampling interval for a running job,
// and a quarter interval for a partial answer so a recovered subtree
// shows through quickly.
func (gw *Gateway) jobTTL(endSec float64, complete bool) time.Duration {
	if !complete {
		return gw.cfg.CacheTTL / 4
	}
	if endSec > 0 {
		return gw.cfg.CacheTTLDone
	}
	return gw.cfg.CacheTTL
}

func (gw *Gateway) handleNodePower(w http.ResponseWriter, r *http.Request) {
	rank64, err := strconv.ParseInt(r.PathValue("rank"), 10, 32)
	if err != nil {
		gw.badRequest(w, "rank %q is not a number", r.PathValue("rank"))
		return
	}
	rank := int32(rank64)
	if rank < 0 || rank >= gw.cfg.Broker.Size() {
		gw.errors4xx.Add(1)
		http.Error(w, fmt.Sprintf(`{"error":"rank %d outside instance of size %d"}`, rank, gw.cfg.Broker.Size()),
			http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	start, end := 0.0, 0.0
	if s := q.Get("start"); s != "" {
		if start, err = strconv.ParseFloat(s, 64); err != nil {
			gw.badRequest(w, "start %q is not a number", s)
			return
		}
	}
	if s := q.Get("end"); s != "" {
		if end, err = strconv.ParseFloat(s, 64); err != nil {
			gw.badRequest(w, "end %q is not a number", s)
			return
		}
	}
	key := fmt.Sprintf("node:%d:%g:%g", rank, start, end)
	ttl := gw.cfg.CacheTTL
	if end == 0 {
		// "until now" answers change every sampling tick; don't cache.
		ttl = 0
	}
	v, err := gw.cachedFetch(r.Context(), key, 0, func(ctx context.Context) (fetched, error) {
		ns, err := gw.pm.CollectNodeContext(ctx, rank, start, end)
		if err != nil {
			return fetched{}, err
		}
		val, err := jsonBody(ns, ns.Complete)
		val.source = ns.Source
		return fetched{val: val, ttl: ttl}, err
	})
	if err != nil {
		gw.fail(w, err)
		return
	}
	gw.writeCached(w, v)
}

func (gw *Gateway) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	v, err := gw.cachedFetch(r.Context(), "status", 0, func(ctx context.Context) (fetched, error) {
		st, err := gw.pm.StatusContext(ctx)
		if err != nil {
			return fetched{}, err
		}
		val, err := jsonBody(st, len(st.Unreachable) == 0)
		return fetched{val: val, ttl: gw.cfg.CacheTTL}, err
	})
	if err != nil {
		gw.fail(w, err)
		return
	}
	gw.writeCached(w, v)
}

func (gw *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := metricsResponse{Metrics: gw.Metrics()}
	fm := gw.hub.Metrics()
	out.Fanout = &fm
	out.Store = gw.storeMetrics(r.Context())
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// storeMetrics returns the fleet store summary, refreshing it upstream
// when the snapshot is older than CacheTTL. Failures keep the previous
// snapshot (or nil): metrics must degrade, not fail.
func (gw *Gateway) storeMetrics(ctx context.Context) *StoreMetrics {
	gw.storeMu.Lock()
	defer gw.storeMu.Unlock()
	now := gw.cfg.Now()
	if !gw.storeAt.IsZero() && now.Sub(gw.storeAt) < gw.cfg.CacheTTL {
		return gw.storeVal
	}
	fctx, cancel := context.WithTimeout(ctx, gw.cfg.RequestTimeout)
	gw.brokerMu.Lock()
	st, err := gw.pm.StatusContext(fctx)
	gw.brokerMu.Unlock()
	cancel()
	if err != nil {
		return gw.storeVal // stale or nil, but never an error
	}
	gw.storeAt = now
	if len(st.Stores) == 0 {
		gw.storeVal = nil
		return nil
	}
	sm := &StoreMetrics{}
	for _, ss := range st.Stores {
		sm.Ranks++
		sm.Segments += ss.Health.Segments
		sm.SealedBlocks += ss.Health.SealedBlocks
		sm.BytesOnDisk += ss.Health.BytesOnDisk
		if ss.Health.LastFsyncLagSec > sm.MaxFsyncLagSec {
			sm.MaxFsyncLagSec = ss.Health.LastFsyncLagSec
		}
		sm.Recoveries += ss.Health.Recoveries
		sm.TornRecords += ss.Health.TornRecords
	}
	gw.storeVal = sm
	return sm
}
