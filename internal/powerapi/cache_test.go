package powerapi

import (
	"sync"
	"testing"
	"time"
)

func fakeClock(start time.Time) (func() time.Time, func(time.Duration)) {
	var mu sync.Mutex
	now := start
	return func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}, func(d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(d)
		}
}

func TestCacheTTLExpiry(t *testing.T) {
	now, advance := fakeClock(time.Unix(0, 0))
	c := newResponseCache(4, now)
	c.put("k", 1, cached{body: []byte("v"), status: 200}, time.Second)
	if _, ok := c.get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	advance(2 * time.Second)
	if _, ok := c.get("k"); ok {
		t.Fatal("expired entry served")
	}
	if hits, misses, entries := c.stats(); hits != 1 || misses != 1 || entries != 0 {
		t.Fatalf("stats: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	now, _ := fakeClock(time.Unix(0, 0))
	c := newResponseCache(2, now)
	c.put("a", 0, cached{}, time.Hour)
	c.put("b", 0, cached{}, time.Hour)
	c.get("a") // promote a; b is now LRU
	c.put("c", 0, cached{}, time.Hour)
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("promoted entry was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("new entry missing")
	}
}

func TestCacheInvalidateJob(t *testing.T) {
	now, _ := fakeClock(time.Unix(0, 0))
	c := newResponseCache(8, now)
	c.put("power:7:raw", 7, cached{}, time.Hour)
	c.put("power:7:aggregate", 7, cached{}, time.Hour)
	c.put("power:8:aggregate", 8, cached{}, time.Hour)
	c.put("status", 0, cached{}, time.Hour)
	c.invalidateJob(7)
	for _, gone := range []string{"power:7:raw", "power:7:aggregate"} {
		if _, ok := c.get(gone); ok {
			t.Fatalf("%s survived invalidation", gone)
		}
	}
	for _, kept := range []string{"power:8:aggregate", "status"} {
		if _, ok := c.get(kept); !ok {
			t.Fatalf("%s wrongly invalidated", kept)
		}
	}
	// jobID 0 marks unscoped entries; invalidating 0 must be a no-op, not
	// a wipe of every unscoped answer.
	c.invalidateJob(0)
	if _, ok := c.get("status"); !ok {
		t.Fatal("invalidateJob(0) dropped an unscoped entry")
	}
}

func TestCacheZeroTTLNotStored(t *testing.T) {
	now, _ := fakeClock(time.Unix(0, 0))
	c := newResponseCache(4, now)
	c.put("k", 0, cached{}, 0)
	if _, ok := c.get("k"); ok {
		t.Fatal("zero-TTL entry stored")
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	var calls int
	var mu sync.Mutex
	fn := func() (cached, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-gate
		return cached{body: []byte("x")}, nil
	}

	const n = 16
	var wg sync.WaitGroup
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, sh := g.do("k", fn)
			if err != nil || string(v.body) != "x" {
				t.Errorf("do: %v %q", err, v.body)
			}
			shared[i] = sh
		}(i)
	}
	// Let followers pile up behind the leader, then release it.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("fn ran %d times", calls)
	}
	var nShared int
	for _, sh := range shared {
		if sh {
			nShared++
		}
	}
	if nShared != n-1 {
		t.Fatalf("%d of %d coalesced, want %d", nShared, n, n-1)
	}
	// A later call runs fresh — the completed flight must not linger.
	if _, _, sh := g.do("k", func() (cached, error) { return cached{}, nil }); sh {
		t.Fatal("finished flight still coalescing")
	}
}

func TestLimiterBurstAndRefill(t *testing.T) {
	now, advance := fakeClock(time.Unix(0, 0))
	p := newLimiterPool(2, 3, now) // 2 tokens/s, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := p.allow("c"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := p.allow("c")
	if ok {
		t.Fatal("empty bucket admitted a request")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v", retry)
	}
	advance(retry)
	if ok, _ := p.allow("c"); !ok {
		t.Fatal("request after advertised wait rejected")
	}
	// Other clients have independent buckets.
	if ok, _ := p.allow("other"); !ok {
		t.Fatal("fresh client rejected")
	}
}

func TestLimiterDisabled(t *testing.T) {
	now, _ := fakeClock(time.Unix(0, 0))
	p := newLimiterPool(0, 1, now)
	for i := 0; i < 100; i++ {
		if ok, _ := p.allow("c"); !ok {
			t.Fatal("disabled limiter rejected a request")
		}
	}
}

func TestLimiterPrunesIdleBuckets(t *testing.T) {
	now, advance := fakeClock(time.Unix(0, 0))
	p := newLimiterPool(1, 2, now)
	for i := 0; i < 50; i++ {
		p.allow("client-" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
	}
	if p.size() == 0 {
		t.Fatal("no buckets recorded")
	}
	// After every bucket has fully refilled and the prune interval
	// passed, one more request sweeps the idle ones.
	advance(2 * time.Minute)
	p.allow("fresh")
	if got := p.size(); got != 1 {
		t.Fatalf("idle buckets not pruned: %d live", got)
	}
}
