package powerapi

import (
	"container/list"
	"sync"
	"time"
)

// cached is one rendered response body held by the cache and returned by
// the coalescer: everything needed to replay the response without
// touching the broker.
type cached struct {
	body        []byte
	contentType string
	status      int
	// complete mirrors the telemetry's own completeness flag: partial
	// results (dead subtree, evicted window) are cached for a fraction of
	// the TTL so a recovered fabric shows through quickly.
	complete bool
	// source is surfaced as X-Source when non-empty: "tsdb" marks an
	// answer (or part of one) served from a node's durable store rather
	// than its in-memory ring.
	source string
}

// responseCache is a TTL+LRU cache of rendered responses keyed by
// (endpoint, jobid, mode). Entries for a job are invalidated when the
// job's finish event arrives: a running job's telemetry grows every
// sample, but the moment it completes its window is immutable, so the
// first post-completion fetch caches the final answer.
type responseCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	now   func() time.Time

	hits, misses uint64
}

type cacheEntry struct {
	key     string
	jobID   uint64 // 0 = not job-scoped
	val     cached
	expires time.Time
}

func newResponseCache(max int, now func() time.Time) *responseCache {
	return &responseCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		now:   now,
	}
}

// get returns the fresh entry for key, if any, and promotes it.
func (c *responseCache) get(key string) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return cached{}, false
	}
	ent := el.Value.(*cacheEntry)
	if c.now().After(ent.expires) {
		c.ll.Remove(el)
		delete(c.items, key)
		c.misses++
		return cached{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.val, true
}

// put stores a rendered response under key with the given TTL, evicting
// the least recently used entry when full. A non-positive TTL disables
// caching for the call.
func (c *responseCache) put(key string, jobID uint64, val cached, ttl time.Duration) {
	if ttl <= 0 || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.val = val
		ent.jobID = jobID
		ent.expires = c.now().Add(ttl)
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	ent := &cacheEntry{key: key, jobID: jobID, val: val, expires: c.now().Add(ttl)}
	c.items[key] = c.ll.PushFront(ent)
}

// invalidateJob drops every entry cached for jobID — called from the
// job.finish event subscription so completion is visible on the very
// next request, not a TTL later.
func (c *responseCache) invalidateJob(jobID uint64) {
	if jobID == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if ent := el.Value.(*cacheEntry); ent.jobID == jobID {
			c.ll.Remove(el)
			delete(c.items, ent.key)
		}
	}
}

// stats returns hit/miss counters and the current entry count.
func (c *responseCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
