package powerapi

import (
	"crypto/subtle"
	"net/http"
	"strings"
	"sync/atomic"
)

// Tenant is one authenticated API consumer: a bearer token plus the
// quotas the gateway enforces on its behalf. Configuring any tenant
// switches the gateway to authenticated mode — requests without a valid
// token get 401.
type Tenant struct {
	// Name identifies the tenant in metrics and rate-limit keys.
	Name string
	// Token is the bearer credential presented as
	// "Authorization: Bearer <token>".
	Token string
	// MaxStreams caps the tenant's concurrent SSE streams; 0 = unlimited.
	MaxStreams int
	// RateLimit/RateBurst bound the tenant's aggregate request rate
	// across all its clients, layered over (not replacing) the per-client
	// buckets. 0 = unlimited.
	RateLimit float64
	RateBurst int
}

// tenantState is a Tenant plus its live accounting.
type tenantState struct {
	Tenant
	// streams is the tenant's live SSE stream count, checked against
	// MaxStreams at stream admission.
	streams atomic.Int64
}

// acquireStream claims a concurrent-stream slot, failing when the quota
// is exhausted. A nil receiver (anonymous mode) always admits.
func (t *tenantState) acquireStream() bool {
	if t == nil || t.MaxStreams <= 0 {
		return true
	}
	for {
		cur := t.streams.Load()
		if cur >= int64(t.MaxStreams) {
			return false
		}
		if t.streams.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// releaseStream returns a slot claimed by acquireStream.
func (t *tenantState) releaseStream() {
	if t == nil || t.MaxStreams <= 0 {
		return
	}
	t.streams.Add(-1)
}

// authenticate maps the request's bearer token to its tenant. With no
// tenants configured every request passes as anonymous (nil tenant).
// Token comparison is constant-time per candidate so timing does not
// leak how much of a guess matched.
func (gw *Gateway) authenticate(r *http.Request) (*tenantState, bool) {
	if len(gw.tenants) == 0 {
		return nil, true
	}
	auth := r.Header.Get("Authorization")
	const scheme = "Bearer "
	if len(auth) <= len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) {
		return nil, false
	}
	token := strings.TrimSpace(auth[len(scheme):])
	for _, t := range gw.tenants {
		if len(t.Token) == len(token) &&
			subtle.ConstantTimeCompare([]byte(t.Token), []byte(token)) == 1 {
			return t, true
		}
	}
	return nil, false
}

// unauthorized rejects a request that failed authentication.
func (gw *Gateway) unauthorized(w http.ResponseWriter) {
	gw.authFailures.Add(1)
	gw.errors4xx.Add(1)
	w.Header().Set("WWW-Authenticate", `Bearer realm="powerapi"`)
	http.Error(w, `{"error":"missing or invalid bearer token"}`, http.StatusUnauthorized)
}
