package powerapi

import "sync"

// flightGroup is request coalescing (singleflight): when N concurrent
// requests miss the cache on the same key, one leader performs the
// upstream fetch and the other N-1 wait for its result instead of each
// issuing their own TBON reduce. Combined with the response cache this is
// what makes root-broker load sublinear in client count.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val cached
	err error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do executes fn once per key at a time; concurrent callers with the same
// key share the leader's result. shared reports whether this caller
// piggybacked on another's fetch.
func (g *flightGroup) do(key string, fn func() (cached, error)) (val cached, err error, shared bool) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		g.mu.Unlock()
		call.wg.Wait()
		return call.val, call.err, true
	}
	call := &flightCall{}
	call.wg.Add(1)
	g.calls[key] = call
	g.mu.Unlock()

	call.val, call.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	call.wg.Done()
	return call.val, call.err, false
}
