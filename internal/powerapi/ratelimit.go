package powerapi

import (
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// limiterPool holds one token bucket per client key. Buckets refill at
// rate tokens/sec up to burst; an empty bucket rejects the request with
// the time until the next token, which the gateway surfaces as a 429
// with a Retry-After header. Idle buckets are pruned lazily so a churn
// of one-shot clients cannot grow the pool without bound.
type limiterPool struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time

	// pruneEvery bounds how often the pool sweeps for idle buckets.
	pruneEvery time.Duration
	lastPrune  time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiterPool(rate float64, burst int, now func() time.Time) *limiterPool {
	if burst < 1 {
		burst = 1
	}
	return &limiterPool{
		rate:       rate,
		burst:      float64(burst),
		buckets:    make(map[string]*bucket),
		now:        now,
		pruneEvery: time.Minute,
	}
}

// allow consumes one token from key's bucket. When the bucket is empty it
// returns ok=false and how long until a token will be available.
func (p *limiterPool) allow(key string) (ok bool, retryAfter time.Duration) {
	if p == nil || p.rate <= 0 {
		return true, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	b, found := p.buckets[key]
	if !found {
		b = &bucket{tokens: p.burst, last: now}
		p.buckets[key] = b
	} else {
		b.tokens = math.Min(p.burst, b.tokens+now.Sub(b.last).Seconds()*p.rate)
		b.last = now
	}
	p.maybePrune(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / p.rate * float64(time.Second))
}

// maybePrune drops buckets idle long enough to have refilled completely —
// forgetting them loses no state, since a fresh bucket starts full.
// Caller holds p.mu.
func (p *limiterPool) maybePrune(now time.Time) {
	if now.Sub(p.lastPrune) < p.pruneEvery {
		return
	}
	p.lastPrune = now
	full := time.Duration(p.burst / p.rate * float64(time.Second))
	for key, b := range p.buckets {
		if now.Sub(b.last) > full {
			delete(p.buckets, key)
		}
	}
}

// size reports the live bucket count (for tests).
func (p *limiterPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buckets)
}

// clientKey identifies the client for rate limiting: the first entry of
// X-Forwarded-For when present (the gateway may sit behind a proxy),
// otherwise the connection's remote host without the port, so one
// client's parallel connections share a bucket.
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		if i := strings.IndexByte(xff, ','); i >= 0 {
			xff = xff[:i]
		}
		return strings.TrimSpace(xff)
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
