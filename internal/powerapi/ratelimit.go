package powerapi

import (
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// limiterPool holds one token bucket per client key. Buckets refill at
// rate tokens/sec up to burst; an empty bucket rejects the request with
// the time until the next token, which the gateway surfaces as a 429
// with a Retry-After header. Idle buckets are pruned lazily so a churn
// of one-shot clients cannot grow the pool without bound.
type limiterPool struct {
	mu      sync.Mutex
	rate    float64 // default tokens per second (allow path)
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time

	// pruneEvery bounds how often the pool sweeps for idle buckets.
	pruneEvery time.Duration
	lastPrune  time.Time
}

// bucket carries its own rate/burst so one pool can serve keys with
// different limits (per-tenant quotas share a pool with per-client
// defaults).
type bucket struct {
	tokens float64
	rate   float64
	burst  float64
	last   time.Time
}

func newLimiterPool(rate float64, burst int, now func() time.Time) *limiterPool {
	if burst < 1 {
		burst = 1
	}
	return &limiterPool{
		rate:       rate,
		burst:      float64(burst),
		buckets:    make(map[string]*bucket),
		now:        now,
		pruneEvery: time.Minute,
	}
}

// allow consumes one token from key's bucket at the pool's default
// rate/burst. When the bucket is empty it returns ok=false and how long
// until a token will be available.
func (p *limiterPool) allow(key string) (ok bool, retryAfter time.Duration) {
	if p == nil || p.rate <= 0 {
		return true, 0
	}
	return p.allowWith(key, p.rate, p.burst)
}

// allowWith consumes one token from key's bucket, creating it with the
// given rate/burst on first sight. A non-positive rate admits
// unconditionally.
func (p *limiterPool) allowWith(key string, rate, burst float64) (ok bool, retryAfter time.Duration) {
	if p == nil || rate <= 0 {
		return true, 0
	}
	if burst < 1 {
		burst = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	b, found := p.buckets[key]
	if !found {
		b = &bucket{tokens: burst, rate: rate, burst: burst, last: now}
		p.buckets[key] = b
	} else {
		b.rate, b.burst = rate, burst
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
		b.last = now
	}
	p.maybePrune(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// maybePrune drops buckets idle long enough to have refilled completely —
// forgetting them loses no state, since a fresh bucket starts full.
// Caller holds p.mu.
func (p *limiterPool) maybePrune(now time.Time) {
	if now.Sub(p.lastPrune) < p.pruneEvery {
		return
	}
	p.lastPrune = now
	for key, b := range p.buckets {
		full := time.Duration(b.burst / b.rate * float64(time.Second))
		if now.Sub(b.last) > full {
			delete(p.buckets, key)
		}
	}
}

// size reports the live bucket count (for tests).
func (p *limiterPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buckets)
}

// clientKey identifies the client for rate limiting. By default it is
// the connection's remote host without the port, so one client's
// parallel connections share a bucket. Only when the operator declares
// the gateway sits behind a trusted proxy (Config.TrustProxy) is the
// first X-Forwarded-For entry honored — otherwise any client could
// rotate the header and mint itself a fresh bucket per request.
func clientKey(r *http.Request, trustProxy bool) string {
	if trustProxy {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			if i := strings.IndexByte(xff, ','); i >= 0 {
				xff = xff[:i]
			}
			return strings.TrimSpace(xff)
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
