package powerapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/simtime"
)

// testCluster builds a monitored Lassen instance. The gateway attaches
// to its root exactly as an external client would.
func testCluster(t *testing.T, nodes int, pmCfg powermon.Config) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{System: cluster.Lassen, Nodes: nodes, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return powermon.New(pmCfg)
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

// newGateway wires a gateway to the cluster root and arranges a
// once-only Close at test end.
func newGateway(t *testing.T, c *cluster.Cluster, cfg Config) *Gateway {
	t.Helper()
	cfg.Broker = c.Inst.Root()
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return gw
}

// runJob submits a job and drains the cluster, returning the job id.
func runJob(t *testing.T, c *cluster.Cluster, app string, nodes int) uint64 {
	t.Helper()
	id, err := c.Submit(job.Spec{App: app, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	if _, idle := c.RunUntilIdle(2 * time.Hour); !idle {
		t.Fatalf("job %d never finished", id)
	}
	return id
}

// get performs one request against the gateway handler directly.
func get(gw *Gateway, path, remoteAddr string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if remoteAddr != "" {
		req.RemoteAddr = remoteAddr
	}
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	return rec
}

func TestJobsEndpoint(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{})
	gw := newGateway(t, c, Config{})
	id := runJob(t, c, "nqueens", 1)

	rec := get(gw, "/v1/jobs", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body jobsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Jobs) != 1 || body.Jobs[0].ID != id || body.Jobs[0].State != job.StateInactive {
		t.Fatalf("jobs body: %+v", body)
	}
}

func TestJobPowerAggregate(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{})
	gw := newGateway(t, c, Config{})
	id := runJob(t, c, "gemm", 2)

	rec := get(gw, "/v1/jobs/"+strconv.FormatUint(id, 10)+"/power?mode=aggregate", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var ja powermon.JobAggregate
	if err := json.Unmarshal(rec.Body.Bytes(), &ja); err != nil {
		t.Fatal(err)
	}
	if ja.JobID != id || !ja.Complete || ja.AvgNodePowerW <= 0 {
		t.Fatalf("aggregate: %+v", ja)
	}
	if got := rec.Header().Get("X-Complete"); got != "true" {
		t.Fatalf("X-Complete: %q", got)
	}
}

func TestJobPowerRaw(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{})
	gw := newGateway(t, c, Config{})
	id := runJob(t, c, "gemm", 2)

	rec := get(gw, "/v1/jobs/"+strconv.FormatUint(id, 10)+"/power?mode=raw", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if lines[0] != strings.Join(powermon.CSVHeader, ",") {
		t.Fatalf("csv header: %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("csv rows: %d", len(lines))
	}
}

func TestJobPowerBadRequests(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{})
	gw := newGateway(t, c, Config{})
	runJob(t, c, "nqueens", 1)

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/jobs/abc/power", http.StatusBadRequest},
		{"/v1/jobs/1/power?mode=xml", http.StatusBadRequest},
		{"/v1/jobs/999/power", http.StatusNotFound},
		{"/v1/nodes/abc/power", http.StatusBadRequest},
		{"/v1/nodes/99/power", http.StatusNotFound},
		{"/v1/nodes/0/power?start=nope", http.StatusBadRequest},
	} {
		if rec := get(gw, tc.path, ""); rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.path, rec.Code, tc.want, rec.Body.String())
		}
	}
	m := gw.Metrics()
	if m.Errors5xx != 0 {
		t.Fatalf("client errors counted as 5xx: %+v", m)
	}
	if m.Errors4xx != 6 {
		t.Fatalf("Errors4xx = %d, want 6", m.Errors4xx)
	}
}

func TestNodePowerWindow(t *testing.T) {
	c := testCluster(t, 4, powermon.Config{})
	gw := newGateway(t, c, Config{})
	c.RunFor(10 * time.Second)

	rec := get(gw, "/v1/nodes/3/power?start=0&end=10", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var ns powermon.NodeSamples
	if err := json.Unmarshal(rec.Body.Bytes(), &ns); err != nil {
		t.Fatal(err)
	}
	if ns.Rank != 3 || len(ns.Samples) < 3 {
		t.Fatalf("node samples: rank %d, %d samples", ns.Rank, len(ns.Samples))
	}
}

func TestClusterStatus(t *testing.T) {
	c := testCluster(t, 4, powermon.Config{})
	gw := newGateway(t, c, Config{})

	rec := get(gw, "/v1/cluster/status", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var st powermon.InstanceStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Size != 4 || len(st.Unreachable) != 0 {
		t.Fatalf("instance status: %+v", st)
	}
}

func TestDeadRootReturns502(t *testing.T) {
	// An instance with no power-monitor module is the gateway's view of a
	// dead telemetry plane: upstream calls fail and must surface as 502,
	// never a hang or a 200.
	inst, err := broker.NewInstance(broker.InstanceOptions{Size: 1, Scheduler: simtime.NewScheduler()})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := New(Config{Broker: inst.Root()})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	rec := get(gw, "/v1/cluster/status", "")
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if m := gw.Metrics(); m.Errors5xx != 1 {
		t.Fatalf("Errors5xx = %d", m.Errors5xx)
	}
}

func TestCacheHitsAndFinishInvalidation(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{})
	gw := newGateway(t, c, Config{CacheTTL: time.Hour, CacheTTLDone: time.Hour})
	id, err := c.Submit(job.Spec{App: "gemm", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * time.Second) // job running, samples flowing
	path := "/v1/jobs/" + strconv.FormatUint(id, 10) + "/power"

	for i := 0; i < 3; i++ {
		if rec := get(gw, path, ""); rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	if m := gw.Metrics(); m.UpstreamCalls != 1 || m.CacheHits < 2 {
		t.Fatalf("after 3 identical queries: %+v", m)
	}

	// Finishing the job publishes job.finish, which must invalidate the
	// cached running-state answer even though its TTL is an hour.
	if _, idle := c.RunUntilIdle(2 * time.Hour); !idle {
		t.Fatal("job never finished")
	}
	rec := get(gw, path, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var ja powermon.JobAggregate
	if err := json.Unmarshal(rec.Body.Bytes(), &ja); err != nil {
		t.Fatal(err)
	}
	if ja.EndSec == 0 {
		t.Fatal("post-finish query served the stale running-state answer")
	}
	if m := gw.Metrics(); m.UpstreamCalls != 2 {
		t.Fatalf("post-finish query did not go upstream: %+v", m)
	}
}

func TestRateLimit429(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{})
	now := time.Unix(1000, 0)
	gw := newGateway(t, c, Config{
		RateLimit: 1, RateBurst: 2,
		Now: func() time.Time { return now },
	})
	runJob(t, c, "nqueens", 1)

	addr := "203.0.113.9:4242"
	for i := 0; i < 2; i++ {
		if rec := get(gw, "/v1/jobs", addr); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	rec := get(gw, "/v1/jobs", addr)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q", rec.Header().Get("Retry-After"))
	}
	// A different client is unaffected.
	if rec := get(gw, "/v1/jobs", "198.51.100.7:999"); rec.Code != http.StatusOK {
		t.Fatalf("second client: status %d", rec.Code)
	}
	// After the advertised wait, the original client is admitted again.
	now = now.Add(time.Duration(ra) * time.Second)
	if rec := get(gw, "/v1/jobs", addr); rec.Code != http.StatusOK {
		t.Fatalf("post-wait: status %d", rec.Code)
	}
	if m := gw.Metrics(); m.RateLimited != 1 {
		t.Fatalf("RateLimited = %d", m.RateLimited)
	}
}

func TestGracefulShutdown503(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{})
	gw := newGateway(t, c, Config{})
	gw.Close()
	rec := get(gw, "/v1/jobs", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status after Close: %d", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{})
	gw := newGateway(t, c, Config{})
	get(gw, "/v1/cluster/status", "")

	rec := get(gw, "/v1/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var m Metrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests != 2 || m.UpstreamCalls != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestMetricsStoreSection(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{StoreDir: t.TempDir()})
	gw := newGateway(t, c, Config{})
	c.RunFor(time.Minute)

	rec := get(gw, "/v1/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var mr metricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Store == nil {
		t.Fatalf("no store section: %s", rec.Body.String())
	}
	if mr.Store.Ranks != 2 {
		t.Fatalf("store ranks = %d, want 2", mr.Store.Ranks)
	}
	if mr.Store.Segments < 2 || mr.Store.BytesOnDisk <= 0 {
		t.Fatalf("store summary implausible: %+v", *mr.Store)
	}

	// A second scrape inside the TTL serves the cached snapshot.
	if rec := get(gw, "/v1/metrics", ""); rec.Code != http.StatusOK {
		t.Fatalf("second scrape: status %d", rec.Code)
	}

	// A memory-only cluster reports no store section at all.
	c2 := testCluster(t, 1, powermon.Config{})
	gw2 := newGateway(t, c2, Config{})
	rec = get(gw2, "/v1/metrics", "")
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["store"]; ok {
		t.Fatalf("memory-only cluster advertises a store: %s", rec.Body.String())
	}
}

// TestHistoricalReadFromStore: a cluster whose raw ring evicted the
// job's window must answer /power?mode=raw from the durable store —
// byte-identical to a control cluster whose ring never evicted, and
// labeled X-Source: tsdb so clients can tell where the bytes came from.
func TestHistoricalReadFromStore(t *testing.T) {
	run := func(pmCfg powermon.Config) (*Gateway, uint64) {
		c := testCluster(t, 2, pmCfg)
		gw := newGateway(t, c, Config{})
		id, err := c.Submit(job.Spec{App: "gemm", Nodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		c.RunFor(10 * time.Minute)
		return gw, id
	}

	// Identical seed and identical timeline: the only difference is ring
	// capacity (16 samples = 32 s) plus the durable store backing it.
	ctrlGW, ctrlID := run(powermon.Config{})
	evGW, evID := run(powermon.Config{BufferSamples: 16, StoreDir: t.TempDir()})
	if ctrlID != evID {
		t.Fatalf("job ids diverged: control %d, evicted %d", ctrlID, evID)
	}

	path := "/v1/jobs/" + strconv.FormatUint(ctrlID, 10) + "/power?mode=raw"
	ctrl := get(ctrlGW, path, "")
	ev := get(evGW, path, "")
	if ctrl.Code != http.StatusOK || ev.Code != http.StatusOK {
		t.Fatalf("status: control %d, evicted %d", ctrl.Code, ev.Code)
	}
	if got := ctrl.Header().Get("X-Source"); got != "" {
		t.Fatalf("control X-Source = %q, want unset", got)
	}
	if got := ev.Header().Get("X-Source"); got != "tsdb" {
		t.Fatalf("evicted X-Source = %q, want tsdb", got)
	}
	if got := ev.Header().Get("X-Complete"); got != "true" {
		t.Fatalf("evicted X-Complete = %q — store should make the window whole", got)
	}
	if !bytes.Equal(ctrl.Body.Bytes(), ev.Body.Bytes()) {
		t.Fatalf("CSV diverged: control %d bytes, evicted %d bytes",
			ctrl.Body.Len(), ev.Body.Len())
	}
}
