package powerapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/job"
)

// startStream launches the SSE handler on its own goroutine (as a real
// http.Server would) and returns the recorder plus a channel closed when
// the handler returns. All simulated-time advance while the stream is
// live must go through gw.Sync so gateway RPCs and scheduler dispatch
// never interleave.
func startStream(t *testing.T, gw *Gateway, id uint64, ctx context.Context) (*httptest.ResponseRecorder, chan struct{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+strconv.FormatUint(id, 10)+"/stream", nil)
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	started := gw.Metrics().StreamsStarted
	go func() {
		defer close(done)
		gw.ServeHTTP(rec, req)
	}()
	// The stream is attached once its subscriptions are registered;
	// advancing the sim before that could race past the first samples.
	deadline := time.Now().Add(5 * time.Second)
	for gw.Metrics().StreamsStarted == started {
		if time.Now().After(deadline) {
			t.Fatal("stream never attached")
		}
		time.Sleep(time.Millisecond)
	}
	return rec, done
}

func TestStreamDeliversSamplesAndDone(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{PublishSamples: true})
	gw := newGateway(t, c, Config{})
	id, err := c.Submit(job.Spec{App: "gemm", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	gw.Sync(func() { c.RunFor(5 * time.Second) }) // job starts

	rec, done := startStream(t, gw, id, context.Background())
	gw.Sync(func() { c.RunFor(10 * time.Second) }) // samples flow
	// Drain to completion; the finish event must terminate the stream.
	for i := 0; i < 1000; i++ {
		var idle bool
		gw.Sync(func() { _, idle = c.RunUntilIdle(time.Minute) })
		if idle {
			break
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not terminate on job finish")
	}

	body := rec.Body.String()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "event: sample") {
		t.Fatalf("no samples streamed: %q", body)
	}
	if !strings.HasSuffix(strings.TrimSpace(body), "data: {\"id\":"+strconv.FormatUint(id, 10)+"}") ||
		!strings.Contains(body, "event: done") {
		t.Fatalf("stream did not end with done event: %q", body[len(body)-min(len(body), 200):])
	}
	m := gw.Metrics()
	if m.SamplesStreamed == 0 || m.StreamsEnded != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestStreamUnknownJob404(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{PublishSamples: true})
	gw := newGateway(t, c, Config{})
	rec := get(gw, "/v1/jobs/404/stream", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestStreamFinishedJobImmediateDone(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{PublishSamples: true})
	gw := newGateway(t, c, Config{})
	id := runJob(t, c, "nqueens", 1)

	rec, done := startStream(t, gw, id, context.Background())
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream of a finished job did not return immediately")
	}
	if !strings.Contains(rec.Body.String(), "event: done") {
		t.Fatalf("body: %q", rec.Body.String())
	}
}

func TestStreamClientDisconnectNoLeak(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{PublishSamples: true})
	gw := newGateway(t, c, Config{})
	id, err := c.Submit(job.Spec{App: "gemm", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	gw.Sync(func() { c.RunFor(5 * time.Second) })

	ctx, cancel := context.WithCancel(context.Background())
	_, done := startStream(t, gw, id, ctx)
	gw.Sync(func() { c.RunFor(4 * time.Second) })

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not exit on client disconnect")
	}
	if m := gw.Metrics(); m.StreamsEnded != 1 {
		t.Fatalf("StreamsEnded = %d", m.StreamsEnded)
	}

	// The dead stream's subscriptions must be gone: further samples are
	// published but none are counted streamed or dropped.
	before := gw.Metrics()
	gw.Sync(func() { c.RunFor(10 * time.Second) })
	after := gw.Metrics()
	if after.SamplesStreamed != before.SamplesStreamed || after.SamplesDropped != before.SamplesDropped {
		t.Fatalf("disconnected stream still consuming events: before %+v after %+v", before, after)
	}
}

func TestStreamGracefulShutdown(t *testing.T) {
	c := testCluster(t, 2, powermon.Config{PublishSamples: true})
	gw := newGateway(t, c, Config{})
	id, err := c.Submit(job.Spec{App: "gemm", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	gw.Sync(func() { c.RunFor(5 * time.Second) })

	rec, done := startStream(t, gw, id, context.Background())
	gw.Close() // blocks until the stream drains
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close returned before the stream exited")
	}
	if !strings.Contains(rec.Body.String(), "event: shutdown") {
		t.Fatalf("no shutdown event: %q", rec.Body.String())
	}
}
