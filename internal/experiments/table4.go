package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermgr"
)

// Table4Case names one policy column of Table IV.
type Table4Case string

// The five use cases of Table IV.
const (
	CaseUnconstrained Table4Case = "unconstrained"
	CaseIBMDefault    Table4Case = "ibm-default-1200"
	CaseStatic1950    Table4Case = "static-1950"
	CaseProportional  Table4Case = "proportional"
	CaseFPP           Table4Case = "fpp"
)

// Table4Cases lists the use cases in the paper's row order.
var Table4Cases = []Table4Case{
	CaseUnconstrained, CaseIBMDefault, CaseStatic1950, CaseProportional, CaseFPP,
}

// Table4Row is one use case's measurements for both applications.
type Table4Row struct {
	Case         Table4Case
	NodeCapW     float64
	GEMMMaxNodeW float64
	QSMaxNodeW   float64
	GEMMSec      float64
	QSSec        float64
	GEMMEnergyKJ float64 // per node
	QSEnergyKJ   float64 // per node

	// Timelines for Figures 5 (proportional) and 6 (FPP): one GEMM node
	// and one Quicksilver node.
	GEMMTimeline []TimelinePoint
	QSTimeline   []TimelinePoint
}

// Table4Result reproduces Table IV and figures 5-6.
type Table4Result struct {
	Rows []Table4Row
}

// managerFor builds the power-manager configuration for a use case.
func managerFor(c Table4Case) *powermgr.Config {
	switch c {
	case CaseUnconstrained:
		return nil
	case CaseIBMDefault:
		return &powermgr.Config{Policy: powermgr.PolicyStatic, StaticNodeCapW: 1200}
	case CaseStatic1950:
		return &powermgr.Config{Policy: powermgr.PolicyStatic, StaticNodeCapW: 1950}
	case CaseProportional:
		return &powermgr.Config{Policy: powermgr.PolicyProportional, GlobalCapW: clusterBoundW}
	case CaseFPP:
		return &powermgr.Config{Policy: powermgr.PolicyFPP, GlobalCapW: clusterBoundW}
	default:
		return nil
	}
}

// nodeCapFor reports the vendor node cap column of Table IV.
func nodeCapFor(c Table4Case) float64 {
	switch c {
	case CaseUnconstrained:
		return 3050
	case CaseIBMDefault:
		return 1200
	default:
		return 1950 // static-1950 and the dynamic policies' backstop
	}
}

// Table4 runs the GEMM+Quicksilver scenario under each policy. Sensor
// noise is enabled (the real OCC is noisy): the FPP controllers see the
// same imperfect telemetry the paper's implementation did.
func Table4(opts Options) (*Table4Result, error) {
	opts = opts.withDefaults()
	res := &Table4Result{}
	for _, c := range Table4Cases {
		row, err := runTable4Case(opts, c)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runTable4Case(opts Options, c Table4Case) (Table4Row, error) {
	e, err := newEnv(envConfig{
		system:       cluster.Lassen,
		nodes:        scenarioNodes,
		seed:         opts.Seed,
		sensorNoiseW: 8,
		withMonitor:  true,
		manager:      managerFor(c),
	})
	if err != nil {
		return Table4Row{}, err
	}
	defer e.close()

	gemmSpec, qsSpec := scenarioJobs()
	gemmID, err := e.c.Submit(gemmSpec)
	if err != nil {
		return Table4Row{}, err
	}
	qsID, err := e.c.Submit(qsSpec)
	if err != nil {
		return Table4Row{}, err
	}
	if _, idle := e.c.RunUntilIdle(2 * time.Hour); !idle {
		return Table4Row{}, fmt.Errorf("table4: case %s did not drain", c)
	}
	gemmStats, _ := e.c.Stats(gemmID)
	qsStats, _ := e.c.Stats(qsID)
	row := Table4Row{
		Case:         c,
		NodeCapW:     nodeCapFor(c),
		GEMMMaxNodeW: gemmStats.MaxNodePowerW,
		QSMaxNodeW:   qsStats.MaxNodePowerW,
		GEMMSec:      gemmStats.ExecSec(),
		QSSec:        qsStats.ExecSec(),
		GEMMEnergyKJ: gemmStats.EnergyPerNodeJ / 1000,
		QSEnergyKJ:   qsStats.EnergyPerNodeJ / 1000,
	}
	// Timelines (Figs 5-6): first node of each job.
	if jp, err := e.mon.Query(gemmID); err == nil {
		row.GEMMTimeline = timelineFor(jp, gemmStats.Ranks[0])
	}
	if jp, err := e.mon.Query(qsID); err == nil {
		row.QSTimeline = timelineFor(jp, qsStats.Ranks[0])
	}
	return row, nil
}

// Row finds a use case's measurements.
func (r *Table4Result) Row(c Table4Case) (Table4Row, bool) {
	for _, row := range r.Rows {
		if row.Case == c {
			return row, true
		}
	}
	return Table4Row{}, false
}

func (r *Table4Result) tabular() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Case), f0(row.NodeCapW),
			f0(row.GEMMMaxNodeW), f0(row.QSMaxNodeW),
			f0(row.GEMMSec), f0(row.QSSec),
			f0(row.GEMMEnergyKJ), f0(row.QSEnergyKJ),
		})
	}
	return []string{"use_case", "node_cap_W", "gemm_max_W", "qs_max_W", "gemm_s", "qs_s", "gemm_kJ", "qs_kJ"}, rows
}

// Render prints Table IV's layout.
func (r *Table4Result) Render() string {
	header, rows := r.tabular()
	return "Table IV: static vs dynamic power capping (GEMM 6 nodes + Quicksilver 2 nodes)\n" +
		table(header, rows)
}

// RenderCSV emits the table as CSV for plotting.
func (r *Table4Result) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}

// Fig5 extracts the proportional-sharing timeline (Figure 5) from a
// Table IV result: GEMM's node power steps up when Quicksilver exits.
func Fig5(r *Table4Result) (gemm, qs []TimelinePoint, err error) {
	row, ok := r.Row(CaseProportional)
	if !ok {
		return nil, nil, fmt.Errorf("fig5: proportional case missing")
	}
	return row.GEMMTimeline, row.QSTimeline, nil
}

// Fig6 extracts the FPP timeline (Figure 6).
func Fig6(r *Table4Result) (gemm, qs []TimelinePoint, err error) {
	row, ok := r.Row(CaseFPP)
	if !ok {
		return nil, nil, fmt.Errorf("fig6: fpp case missing")
	}
	return row.GEMMTimeline, row.QSTimeline, nil
}

// RenderTimelines prints figures 5/6 style series.
func RenderTimelines(title string, gemm, qs []TimelinePoint) string {
	out := title + "\nGEMM node:\n" + renderTimeline(gemm)
	out += "\nQuicksilver node:\n" + renderTimeline(qs)
	return out
}
