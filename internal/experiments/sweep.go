package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermgr"
)

// SweepRow is one cluster power bound's outcome for the Table IV
// workload under proportional sharing.
type SweepRow struct {
	BoundKW      float64
	PerNodeW     float64 // initial per-node allocation with both jobs running
	GEMMSec      float64
	QSSec        float64
	MakespanSec  float64
	TotalKJ      float64 // whole-cluster energy over the makespan
	MaxClusterKW float64
}

// SweepResult is the hardware-overprovisioning study the paper motivates
// (§IV-C cites [28]): how far can the cluster bound be pushed below the
// 24.4 kW worst case before performance degrades? The crossover sits
// where the bound crosses the workload's natural maximum draw (~11 kW,
// Table III) — bounds above it are free, bounds below trade time for
// power linearly at first and then steeply once GPUs drop below the DVFS
// range. Bounds below the hardware floor (node base power plus the NVML
// 100 W per-GPU minimum — the paper's 1000 W minimum hard node cap) are
// unenforceable: the sweep reports the violation rather than hiding it.
type SweepResult struct {
	Rows []SweepRow
}

// BoundSweep runs the GEMM+Quicksilver scenario under proportional
// sharing across a range of cluster power bounds.
func BoundSweep(opts Options) (*SweepResult, error) {
	opts = opts.withDefaults()
	bounds := []float64{4800, 6400, 8000, 9600, 11200, 12800, 24400}
	if opts.Quick {
		bounds = []float64{6400, 9600, 12800}
	}
	res := &SweepResult{}
	for _, bound := range bounds {
		row, err := runSweepCase(opts, bound)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runSweepCase(opts Options, boundW float64) (SweepRow, error) {
	e, err := newEnv(envConfig{
		system:      cluster.Lassen,
		nodes:       scenarioNodes,
		seed:        opts.Seed,
		withMonitor: true,
		manager:     &powermgr.Config{Policy: powermgr.PolicyProportional, GlobalCapW: boundW},
	})
	if err != nil {
		return SweepRow{}, err
	}
	defer e.close()
	sampler := sampleClusterPower(e.c, 2*time.Second)
	gemmSpec, qsSpec := scenarioJobs()
	gemmID, err := e.c.Submit(gemmSpec)
	if err != nil {
		return SweepRow{}, err
	}
	qsID, err := e.c.Submit(qsSpec)
	if err != nil {
		return SweepRow{}, err
	}
	if _, idle := e.c.RunUntilIdle(6 * time.Hour); !idle {
		return SweepRow{}, fmt.Errorf("sweep: bound %v W did not drain", boundW)
	}
	sampler.stop()
	maxW, avgW := sampler.maxAvg()
	gemmStats, _ := e.c.Stats(gemmID)
	qsStats, _ := e.c.Stats(qsID)
	makespan := gemmStats.EndSec
	if qsStats.EndSec > makespan {
		makespan = qsStats.EndSec
	}
	perNode := boundW / float64(scenarioNodes)
	if perNode > 3050 {
		perNode = 3050
	}
	return SweepRow{
		BoundKW:      boundW / 1000,
		PerNodeW:     perNode,
		GEMMSec:      gemmStats.ExecSec(),
		QSSec:        qsStats.ExecSec(),
		MakespanSec:  makespan,
		TotalKJ:      avgW * makespan / 1000,
		MaxClusterKW: maxW / 1000,
	}, nil
}

// Crossover returns the smallest bound (kW) whose GEMM runtime is within
// tolPct of the unconstrained runtime — the point beyond which extra
// provisioned power buys nothing.
func (r *SweepResult) Crossover(tolPct float64) (float64, bool) {
	if len(r.Rows) == 0 {
		return 0, false
	}
	unconstrained := r.Rows[len(r.Rows)-1].GEMMSec
	for _, row := range r.Rows {
		if (row.GEMMSec-unconstrained)/unconstrained*100 <= tolPct {
			return row.BoundKW, true
		}
	}
	return 0, false
}

func (r *SweepResult) tabular() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			f1(row.BoundKW), f0(row.PerNodeW), f0(row.GEMMSec), f0(row.QSSec),
			f0(row.MakespanSec), f0(row.TotalKJ), f2(row.MaxClusterKW),
		})
	}
	return []string{"bound_kW", "per_node_W", "gemm_s", "qs_s", "makespan_s", "total_kJ", "max_kW"}, rows
}

// Render prints the sweep.
func (r *SweepResult) Render() string {
	header, rows := r.tabular()
	return "Cluster power bound sweep (proportional sharing, GEMM+Quicksilver)\n" +
		table(header, rows)
}

// RenderCSV emits the sweep as CSV for plotting.
func (r *SweepResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}
