package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/chaos"
)

// HealRow is one point of the mean-time-to-heal sweep: how long the
// self-healing TBON takes to re-converge after interior ranks crash.
type HealRow struct {
	// Mode is "sim" (64-node simulated cluster, simulated seconds) or
	// "live-tcp" (loopback TCP brokers, wall-clock seconds).
	Mode string
	// Crashes is the number of interior ranks killed simultaneously.
	Crashes int
	// HealSec is the time from the crash instant until a root liveness
	// sweep covers every rank except the dead ones — detection, orphan
	// re-parenting, and subtree accounting repair included.
	HealSec float64
	// Converged reports whether coverage returned to all-but-the-dead
	// within the measurement window at all.
	Converged bool
	// Violations counts chaos invariants broken after the dead ranks were
	// revived and the instance quiesced — the bar is zero: healing may
	// take time but may not leak state.
	Violations int
}

// HealResult is the crash-count vs heal-latency sweep.
type HealResult struct {
	SimNodes  int
	LiveNodes int
	Rows      []HealRow
}

// healSimCrashSet is the deterministic interior-rank kill list for the
// 64-node fanout-2 sim topology, ordered so each prefix is a meaningful
// scenario: {1,2} kills both root children (every orphan reattaches
// straight to the root), {1,2,5,6} adds a cascade (5 and 6 are children
// of dead 2), and the full set forces leaf orphans to walk three dead
// ancestors before finding a live parent.
var healSimCrashSet = []int32{1, 2, 5, 6, 11, 12, 13, 14}

// Heal measures mean time to heal: it crashes growing sets of interior
// TBON ranks permanently, then steps the clock until a root liveness
// sweep again covers every surviving rank. The sim sweep scales crash
// count on a 64-node cluster; one live-TCP point replays the single
// interior crash over real sockets and wall-clock heartbeats.
func Heal(o Options) (*HealResult, error) {
	o = o.withDefaults()
	crashCounts := []int{1, 2, 4, 8}
	if o.Quick {
		crashCounts = []int{1, 2}
	}
	res := &HealResult{SimNodes: 64, LiveNodes: 16}
	for i, n := range crashCounts {
		row, err := healSimOne(res.SimNodes, o.Seed+int64(i), n)
		if err != nil {
			return nil, fmt.Errorf("heal: sim %d crashes: %w", n, err)
		}
		res.Rows = append(res.Rows, row)
	}
	row, err := healLiveOne(res.LiveNodes)
	if err != nil {
		return nil, fmt.Errorf("heal: live-tcp: %w", err)
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

func healSimOne(nodes int, seed int64, crashes int) (HealRow, error) {
	const crashSec = 5.0
	row := HealRow{Mode: "sim", Crashes: crashes}
	plan := chaos.Plan{Seed: seed}
	for _, r := range healSimCrashSet[:crashes] {
		// No EndSec: the crash is permanent until Disarm revives it.
		plan.Nodes = append(plan.Nodes, chaos.NodeRule{
			Rank: r, Kind: chaos.FaultCrash,
			Window: chaos.Window{StartSec: crashSec},
		})
	}
	inj := chaos.New(plan)
	c, err := cluster.New(cluster.Config{
		System:      cluster.Lassen,
		Nodes:       nodes,
		Seed:        seed,
		WrapLink:    inj.WrapLink,
		CallTimeout: 2 * time.Second,
		Heal:        &broker.HealConfig{Interval: 100 * time.Millisecond, MissThreshold: 3},
	})
	if err != nil {
		return row, err
	}
	defer c.Close()
	inj.Bind(c.Sched)

	var live *chaos.Liveness
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		l := chaos.NewLiveness(2 * time.Second)
		if rank == 0 {
			live = l
		}
		return l
	}); err != nil {
		return row, err
	}

	c.RunFor(5 * time.Second) // heartbeats settle; crashes fire at 5 s
	if res, err := live.Sweep(nil, 2*time.Second); err != nil || res.Partial {
		return row, fmt.Errorf("steady state not full before crash: %+v err=%v", res, err)
	}

	// Step in 50 ms increments until coverage returns to all-but-the-dead;
	// the step size bounds the measurement's resolution.
	inj.Arm()
	const stepSec, limitSec = 0.05, 30.0
	for c.Sched.Now().Seconds() < crashSec+limitSec {
		c.RunFor(50 * time.Millisecond)
		res, err := live.Sweep(nil, 2*time.Second)
		if err != nil {
			continue
		}
		if res.Ranks == nodes-crashes && res.Missing == crashes {
			row.Converged = true
			row.HealSec = c.Sched.Now().Seconds() - crashSec
			break
		}
	}

	// Revive the dead ranks; they rejoin, and the full invariant suite
	// must be clean once everything quiesces.
	inj.Disarm()
	c.RunFor(15 * time.Second)
	row.Violations = len(chaos.Check(chaos.CheckConfig{
		Brokers:            c.Inst.Brokers,
		Injector:           inj,
		Liveness:           live,
		Heal:               true,
		RPCTimeout:         2 * time.Second,
		ExpectAllReachable: true,
	}))
	return row, nil
}

func healLiveOne(nodes int) (HealRow, error) {
	row := HealRow{Mode: "live-tcp", Crashes: 1}
	// StartSec 0: the fault is live the instant Arm is called, so the
	// heal clock starts at the (wall-measured) Arm instant rather than at
	// a pre-declared absolute time.
	plan := chaos.Plan{
		Seed: 1,
		Nodes: []chaos.NodeRule{
			{Rank: 1, Kind: chaos.FaultCrash, Window: chaos.Window{StartSec: 0}},
		},
	}
	inj := chaos.New(plan)
	li, err := broker.NewLiveInstance(broker.InstanceOptions{
		Size:        nodes,
		WrapLink:    inj.WrapLink,
		CallTimeout: 500 * time.Millisecond,
		Heal:        &broker.HealConfig{Interval: 30 * time.Millisecond, MissThreshold: 3},
	})
	if err != nil {
		return row, err
	}
	defer li.Close()
	inj.Bind(li.Wall)

	var live *chaos.Liveness
	if err := li.LoadModuleAll(func(rank int32) broker.Module {
		l := chaos.NewLiveness(400 * time.Millisecond)
		if rank == 0 {
			live = l
		}
		return l
	}); err != nil {
		return row, err
	}

	// Warm up until a sweep covers the whole instance (heartbeats and
	// listeners settle on real sockets at their own pace).
	warmDeadline := time.Now().Add(5 * time.Second)
	for {
		res, err := live.Sweep(nil, 400*time.Millisecond)
		if err == nil && !res.Partial {
			break
		}
		if time.Now().After(warmDeadline) {
			return row, fmt.Errorf("live instance never reached steady state: %+v err=%v", res, err)
		}
		time.Sleep(25 * time.Millisecond)
	}

	inj.Arm()
	armAt := time.Now()
	deadline := armAt.Add(10 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		res, err := live.Sweep(nil, 400*time.Millisecond)
		if err != nil {
			continue // the sweep itself may be collateral damage mid-heal
		}
		if res.Ranks == nodes-1 && res.Missing == 1 {
			row.Converged = true
			row.HealSec = time.Since(armAt).Seconds()
			break
		}
	}

	inj.Disarm()
	time.Sleep(1200 * time.Millisecond) // revived rank rejoins; deadlines drain
	row.Violations = len(chaos.Check(chaos.CheckConfig{
		Brokers:            li.Brokers,
		Injector:           inj,
		Liveness:           live,
		Heal:               true,
		RPCTimeout:         2 * time.Second,
		ExpectAllReachable: true,
	}))
	return row, nil
}

func (r *HealResult) tabular() ([]string, [][]string) {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode,
			fmt.Sprintf("%d", row.Crashes),
			fmt.Sprintf("%.2f", row.HealSec),
			fmt.Sprintf("%v", row.Converged),
			fmt.Sprintf("%d", row.Violations),
		})
	}
	return []string{"mode", "crashes", "heal_sec", "converged", "violations"}, rows
}

// Render prints the sweep.
func (r *HealResult) Render() string {
	header, rows := r.tabular()
	return fmt.Sprintf("Heal: time to re-converge after interior-rank crashes (%d-node sim TBON, %d-node live-TCP)\n",
		r.SimNodes, r.LiveNodes) +
		table(header, rows) +
		"heal_sec spans detection (missed heartbeats), orphan re-parenting and subtree\n" +
		"accounting repair; sim rows are simulated seconds, live-tcp rows wall-clock.\n" +
		"violations counts invariants broken after the dead ranks revive — the bar is zero.\n"
}

// RenderCSV emits the sweep as CSV for plotting.
func (r *HealResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}
