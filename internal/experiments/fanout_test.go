package experiments

import (
	"strings"
	"testing"
)

// TestFanoutQuick runs the broadcast-plane benchmark at quick scale and
// gates the acceptance criteria: exactly one upstream bus subscription
// per job regardless of client count, p99 delivery latency and
// allocations per delivered event under their bounds, and the
// snapshot-then-delta resume byte-identical to an uninterrupted
// reference stream. Fanout itself errors on any gate breach, so CI only
// needs this call to fail the build. The full run adds the 100k-client
// row and is published as BENCH_fanout.json.
func TestFanoutQuick(t *testing.T) {
	res, err := Fanout(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("quick rows = %d, want 2: %+v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if row.UpstreamSubs != 1 {
			t.Fatalf("%d clients held %d upstream subscriptions, want 1", row.Clients, row.UpstreamSubs)
		}
		if row.Frames == 0 || row.Deliveries == 0 {
			t.Fatalf("empty measured window: %+v", row)
		}
		if want := uint64(row.Clients) * row.Frames; row.Deliveries < want {
			t.Fatalf("%d clients: %d deliveries < clients*frames %d", row.Clients, row.Deliveries, want)
		}
		if row.Evictions != 0 {
			t.Fatalf("%d clients: %d evictions during healthy fan-out", row.Clients, row.Evictions)
		}
	}
	if !res.ResumeByteIdentical {
		t.Fatal("resumed stream not byte-identical to reference")
	}
	if !strings.Contains(res.Render(), "upstream_subs") {
		t.Fatal("render missing upstream_subs column")
	}
	js, err := res.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "fanout"`, `"resume_byte_identical": true`, `"upstream_subs": 1`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %q:\n%s", want, js)
		}
	}
}
