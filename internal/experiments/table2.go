package experiments

import (
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/flux/job"
)

// Table2Row mirrors one row of Table II: an application at a node count,
// compared across Lassen and Tioga.
type Table2Row struct {
	App        string
	Nodes      int
	LassenSec  float64
	TiogaSec   float64
	LassenAvgW float64
	TiogaAvgW  float64
	// Energies are per-node kJ; Quicksilver's Tioga energy is omitted
	// (EnergyComparable=false) because of the HIP anomaly, as in the
	// paper's footnote.
	LassenEnergyKJ   float64
	TiogaEnergyKJ    float64
	EnergyComparable bool
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs LAMMPS, Laghos and Quicksilver at 4 and 8 nodes on both
// systems (Lassen task counts 16/32, Tioga 32/64 — captured by the
// application models' per-system variants).
func Table2(opts Options) (*Table2Result, error) {
	opts = opts.withDefaults()
	res := &Table2Result{}
	for _, app := range []string{"lammps", "laghos", "quicksilver"} {
		for _, nodes := range []int{4, 8} {
			row := Table2Row{App: app, Nodes: nodes, EnergyComparable: app != "quicksilver"}
			for _, system := range []cluster.System{cluster.Lassen, cluster.Tioga} {
				e, err := newEnv(envConfig{
					system:      system,
					nodes:       nodes,
					seed:        opts.Seed,
					withMonitor: true,
				})
				if err != nil {
					return nil, err
				}
				st, sum, err := e.runJob(job.Spec{App: app, Nodes: nodes}, 60*time.Minute)
				e.close()
				if err != nil {
					return nil, err
				}
				switch system {
				case cluster.Lassen:
					row.LassenSec = st.ExecSec()
					row.LassenAvgW = sum.AvgNodePowerW
					row.LassenEnergyKJ = st.EnergyPerNodeJ / 1000
				case cluster.Tioga:
					row.TiogaSec = st.ExecSec()
					row.TiogaAvgW = sum.AvgNodePowerW
					row.TiogaEnergyKJ = st.EnergyPerNodeJ / 1000
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Row finds a table entry.
func (r *Table2Result) Row(app string, nodes int) (Table2Row, bool) {
	for _, row := range r.Rows {
		if row.App == app && row.Nodes == nodes {
			return row, true
		}
	}
	return Table2Row{}, false
}

func (r *Table2Result) tabular() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		le, te := f2(row.LassenEnergyKJ), f2(row.TiogaEnergyKJ)
		if !row.EnergyComparable {
			le, te = "-", "-*"
		}
		rows = append(rows, []string{
			row.App, f0(float64(row.Nodes)),
			f2(row.LassenSec), f2(row.TiogaSec),
			f2(row.LassenAvgW), f2(row.TiogaAvgW),
			le, te,
		})
	}
	return []string{"app", "nodes", "lassen_s", "tioga_s", "lassen_W", "tioga_W", "lassen_kJ", "tioga_kJ"}, rows
}

// Render prints Table II's layout.
func (r *Table2Result) Render() string {
	header, rows := r.tabular()
	return "Table II: runtime / avg node power / avg per-node energy, Lassen vs Tioga\n" +
		table(header, rows) +
		"* Quicksilver energy not compared due to the anomalous HIP-variant runtime (§IV-A).\n"
}

// RenderCSV emits the table as CSV for plotting.
func (r *Table2Result) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}
