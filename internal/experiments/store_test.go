package experiments

import "testing"

// TestStoreQuick runs the durable-store benchmark at quick scale and
// pins its contract: everything ingested is recovered, the compressed
// footprint stays at or under a quarter of the raw-CSV baseline, and a
// cold recovery of the full history lands well under a second.
func TestStoreQuick(t *testing.T) {
	r, err := Store(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.RecoveredSamples != r.Samples {
		t.Fatalf("recovered %d of %d ingested samples", r.RecoveredSamples, r.Samples)
	}
	if r.DiskBytes <= 0 || r.CSVBytes <= 0 {
		t.Fatalf("degenerate sizes: disk %d, csv %d", r.DiskBytes, r.CSVBytes)
	}
	if r.Ratio > 0.25 {
		t.Fatalf("compression ratio %.3f exceeds the 0.25 bar (disk %d vs csv %d)",
			r.Ratio, r.DiskBytes, r.CSVBytes)
	}
	if r.RecoveryMs >= 1000 {
		t.Fatalf("cold recovery of %d samples took %.1f ms, bar is < 1000 ms",
			r.Samples, r.RecoveryMs)
	}
	if r.IngestPerSec <= 0 || r.SealedBlocks < 1 {
		t.Fatalf("implausible run: %+v", *r)
	}
}
