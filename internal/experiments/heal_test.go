package experiments

import (
	"strings"
	"testing"
)

// TestHealExperiment runs the quick heal sweep end-to-end and gates the
// acceptance threshold: mean time to heal for a single interior-rank
// crash on the 64-node sim topology must be at most 2 simulated seconds,
// every scenario must re-converge, and no scenario may leak state.
func TestHealExperiment(t *testing.T) {
	res, err := Heal(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // sim crashes {1,2} + one live-tcp point
		t.Fatalf("rows = %d, want 3: %+v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if !row.Converged {
			t.Errorf("%s with %d crashes never re-converged", row.Mode, row.Crashes)
		}
		if row.Violations != 0 {
			t.Errorf("%s with %d crashes: %d invariant violations after revive",
				row.Mode, row.Crashes, row.Violations)
		}
	}
	single := res.Rows[0]
	if single.Mode != "sim" || single.Crashes != 1 {
		t.Fatalf("first row is not the single-crash sim point: %+v", single)
	}
	// The gated mean-time-to-heal threshold (CI acceptance criterion).
	if single.HealSec > 2.0 {
		t.Fatalf("single interior-rank crash healed in %.2f simulated seconds, budget 2.0", single.HealSec)
	}
	if !strings.Contains(res.Render(), "heal_sec") {
		t.Fatal("render missing heal_sec column")
	}
}

// TestHealSimScalesWithCrashCount sanity-checks that deeper kill sets
// still converge: the full sweep's largest scenario forces orphans to
// walk multiple dead ancestors.
func TestHealSimScalesWithCrashCount(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash-count sweep in -short mode")
	}
	row, err := healSimOne(64, DefaultSeed+7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Converged {
		t.Fatalf("8-crash cascade never re-converged: %+v", row)
	}
	if row.Violations != 0 {
		t.Fatalf("8-crash cascade leaked state: %d violations", row.Violations)
	}
}
