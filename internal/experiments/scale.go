package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/flux/transport"
)

// ScaleRow compares one cluster size: a whole-cluster job's power query
// answered by the paper's flat raw gather vs by in-network reduction.
type ScaleRow struct {
	Nodes int
	// RawRootBytes / AggRootBytes count the bytes arriving at rank 0 over
	// its TBON links during the query — the root link the paper worries
	// about at scale.
	RawRootBytes uint64
	AggRootBytes uint64
	// ByteRatio is RawRootBytes / AggRootBytes.
	ByteRatio float64
	// RawWallMs / AggWallMs are host wall-clock times to process the
	// query (the simulation is synchronous, so this is pure processing
	// and marshaling cost — it tracks payload volume).
	RawWallMs float64
	AggWallMs float64
	// RawSamples is how many raw samples the flat gather shipped;
	// AggSamples how many the aggregate summarized without shipping.
	RawSamples int
	AggSamples int
	// AvgNodePowerW from both paths, to show the aggregate loses nothing
	// the summary needs.
	RawAvgW float64
	AggAvgW float64
}

// ScaleResult is the root-link scaling comparison.
type ScaleResult struct {
	Rows []ScaleRow
}

// Scale sweeps cluster sizes up to Lassen's 792-node pool and, at each
// size, runs one whole-cluster job and asks for its power twice: once as
// the paper's flat raw-sample gather, once as the in-network aggregate.
// Both TBON links into rank 0 are wrapped with byte counters, so the rows
// report exactly what crosses the root link each way. The flat gather
// grows O(N · samples); the reduction stays O(aggregate), so the ratio
// grows with N.
func Scale(o Options) (*ScaleResult, error) {
	o = o.withDefaults()
	sizes := []int{8, 64, 256, 792}
	if o.Quick {
		sizes = []int{8, 32, 64}
	}
	res := &ScaleResult{}
	for _, n := range sizes {
		row, err := scaleOne(n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("scale: %d nodes: %w", n, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func scaleOne(nodes int, seed int64) (ScaleRow, error) {
	row := ScaleRow{Nodes: nodes}
	// Count every byte arriving at rank 0 over the TBON.
	var rootIngress []*transport.Counter
	c, err := cluster.New(cluster.Config{
		System: cluster.Lassen,
		Nodes:  nodes,
		Seed:   seed,
		WrapLink: func(from, to int32, l transport.Link) transport.Link {
			if to != 0 {
				return l
			}
			ctr := transport.NewCounter(l)
			rootIngress = append(rootIngress, ctr)
			return ctr
		},
	})
	if err != nil {
		return row, err
	}
	defer c.Close()
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return powermon.New(powermon.Config{})
	}); err != nil {
		return row, err
	}
	id, err := c.Submit(job.Spec{App: "laghos", Nodes: nodes})
	if err != nil {
		return row, err
	}
	if _, idle := c.RunUntilIdle(5 * time.Minute); !idle {
		return row, fmt.Errorf("job never finished")
	}
	ingress := func() uint64 {
		var total uint64
		for _, ctr := range rootIngress {
			_, bytes := ctr.Stats()
			total += bytes
		}
		return total
	}
	client := powermon.NewClient(c.Inst.Root())

	before := ingress()
	start := time.Now()
	jp, err := client.Query(id)
	if err != nil {
		return row, err
	}
	row.RawWallMs = float64(time.Since(start)) / float64(time.Millisecond)
	row.RawRootBytes = ingress() - before
	sum, err := powermon.Summarize(jp)
	if err != nil {
		return row, err
	}
	row.RawAvgW = sum.AvgNodePowerW
	for _, node := range jp.Nodes {
		row.RawSamples += len(node.Samples)
	}

	before = ingress()
	start = time.Now()
	ja, err := client.QueryAggregate(id)
	if err != nil {
		return row, err
	}
	row.AggWallMs = float64(time.Since(start)) / float64(time.Millisecond)
	row.AggRootBytes = ingress() - before
	if ja.Partial || ja.NodesReporting != nodes {
		return row, fmt.Errorf("healthy cluster answered partially: %+v", ja)
	}
	row.AggAvgW = ja.AvgNodePowerW
	row.AggSamples = ja.SampleCount
	if row.AggRootBytes > 0 {
		row.ByteRatio = float64(row.RawRootBytes) / float64(row.AggRootBytes)
	}
	return row, nil
}

func (r *ScaleResult) tabular() ([]string, [][]string) {
	f0 := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	f1 := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	f2 := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			f0(float64(row.Nodes)),
			f0(float64(row.RawSamples)),
			f1(float64(row.RawRootBytes) / 1024),
			f1(float64(row.AggRootBytes) / 1024),
			f1(row.ByteRatio),
			f2(row.RawWallMs),
			f2(row.AggWallMs),
			f1(row.RawAvgW),
			f1(row.AggAvgW),
		})
	}
	return []string{"nodes", "samples", "raw_root_KiB", "agg_root_KiB", "byte_ratio",
		"raw_ms", "agg_ms", "raw_avg_W", "agg_avg_W"}, rows
}

// Render prints the scaling comparison.
func (r *ScaleResult) Render() string {
	header, rows := r.tabular()
	return "Scale: whole-cluster job power query, flat raw gather vs in-network reduction\n" +
		table(header, rows) +
		"raw ships every sample over the root link (O(N·samples)); the reduction merges\n" +
		"per-subtree aggregates at each TBON rank, so the root sees O(aggregate).\n"
}

// RenderCSV emits the comparison as CSV for plotting.
func (r *ScaleResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}
