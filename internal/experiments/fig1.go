package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/flux/job"
)

// Fig1Result reproduces Figure 1: single-node Lassen power timelines for
// LAMMPS (flat, compute-bound) and Quicksilver (periodic phases), showing
// total node power, one socket's CPU power and one GPU's power.
type Fig1Result struct {
	LAMMPS      []TimelinePoint
	Quicksilver []TimelinePoint
}

// Fig1 runs both applications on one Lassen node (all four GPUs) with the
// monitor sampling every 2 s, as in the paper.
func Fig1(opts Options) (*Fig1Result, error) {
	opts = opts.withDefaults()
	res := &Fig1Result{}
	run := func(spec job.Spec) ([]TimelinePoint, error) {
		e, err := newEnv(envConfig{
			system:      cluster.Lassen,
			nodes:       1,
			seed:        opts.Seed,
			withMonitor: true,
		})
		if err != nil {
			return nil, err
		}
		defer e.close()
		id, err := e.c.Submit(spec)
		if err != nil {
			return nil, err
		}
		if _, idle := e.c.RunUntilIdle(30 * time.Minute); !idle {
			return nil, fmt.Errorf("fig1: %s did not finish", spec.App)
		}
		jp, err := e.mon.Query(id)
		if err != nil {
			return nil, err
		}
		return timelineFor(jp, 0), nil
	}
	var err error
	// Longer-running inputs than Table II so the timeline shows multiple
	// periods, as the figure does.
	if res.LAMMPS, err = run(job.Spec{App: "lammps", Nodes: 1, RepFactor: 2}); err != nil {
		return nil, err
	}
	if res.Quicksilver, err = run(job.Spec{App: "quicksilver", Nodes: 1, SizeFactor: 10}); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints both series as aligned columns.
func (r *Fig1Result) Render() string {
	out := "Fig 1a: LAMMPS on Lassen (1 node, 4 GPUs)\n"
	out += renderTimeline(r.LAMMPS)
	out += "\nFig 1b: Quicksilver on Lassen (1 node, 4 GPUs)\n"
	out += renderTimeline(r.Quicksilver)
	return out
}

func renderTimeline(pts []TimelinePoint) string {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			f1(p.TimeSec), f1(p.NodeW), f1(p.CPUW / 2), f1(p.GPU0W),
		})
	}
	return table([]string{"time_s", "node_W", "socket0_W", "gpu0_W"}, rows)
}
