package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermgr"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/stats"
)

// QueueJobMix is the §IV-E workload: 10 jobs on a 16-node allocation — 3
// Laghos, 2 Quicksilver, 3 LAMMPS, 2 GEMM — each requesting 1-8 nodes, in
// a seeded random order. Size factors lengthen the short Table II inputs
// so the queue runs for tens of minutes, as the paper's did.
func QueueJobMix(seed int64) []job.Spec {
	specs := []job.Spec{
		{App: "laghos", SizeFactor: 10},
		{App: "laghos", SizeFactor: 10},
		{App: "laghos", SizeFactor: 10},
		{App: "quicksilver", SizeFactor: 10},
		{App: "quicksilver", SizeFactor: 10},
		{App: "lammps", RepFactor: 2},
		{App: "lammps", RepFactor: 2},
		{App: "lammps", RepFactor: 2},
		{App: "gemm"},
		{App: "gemm"},
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range specs {
		specs[i].Nodes = 1 + rng.Intn(8)
		specs[i].Name = fmt.Sprintf("%s-%d", specs[i].App, i)
	}
	rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })
	return specs
}

// QueuePolicyResult is one policy's outcome on the job queue.
type QueuePolicyResult struct {
	Policy             powermgr.Policy
	MakespanSec        float64
	AvgEnergyPerNodeKJ float64 // averaged over jobs (§IV-E's metric)
	JobEnergiesKJ      map[string]float64
	JobExecSec         map[string]float64
}

// QueueResult reproduces §IV-E: the same queue under proportional sharing
// and FPP.
type QueueResult struct {
	Proportional QueuePolicyResult
	FPP          QueuePolicyResult
}

// Queue runs the 10-job queue on a 16-node power-constrained Lassen
// allocation under both dynamic policies.
func Queue(opts Options) (*QueueResult, error) {
	opts = opts.withDefaults()
	const queueNodes = 16
	const queueBoundW = 16 * 1200 // same per-node budget as Table IV's constrained case
	res := &QueueResult{}
	for _, policy := range []powermgr.Policy{powermgr.PolicyProportional, powermgr.PolicyFPP} {
		e, err := newEnv(envConfig{
			system:       cluster.Lassen,
			nodes:        queueNodes,
			seed:         opts.Seed,
			sensorNoiseW: 8,
			withMonitor:  true,
			manager:      &powermgr.Config{Policy: policy, GlobalCapW: queueBoundW},
		})
		if err != nil {
			return nil, err
		}
		specs := QueueJobMix(opts.Seed)
		ids := make([]uint64, 0, len(specs))
		var firstSubmit float64
		for i, spec := range specs {
			id, err := e.c.Submit(spec)
			if err != nil {
				e.close()
				return nil, fmt.Errorf("queue: submit %s: %w", spec.Name, err)
			}
			if i == 0 {
				firstSubmit = e.c.Now().Seconds()
			}
			ids = append(ids, id)
		}
		if _, idle := e.c.RunUntilIdle(6 * time.Hour); !idle {
			e.close()
			return nil, fmt.Errorf("queue: policy %s did not drain", policy)
		}
		pr := QueuePolicyResult{
			Policy:        policy,
			JobEnergiesKJ: map[string]float64{},
			JobExecSec:    map[string]float64{},
		}
		var lastEnd float64
		var energies []float64
		for i, id := range ids {
			st, ok := e.c.Stats(id)
			if !ok {
				e.close()
				return nil, fmt.Errorf("queue: job %d has no stats", id)
			}
			if st.EndSec > lastEnd {
				lastEnd = st.EndSec
			}
			pr.JobEnergiesKJ[specs[i].Name] = st.EnergyPerNodeJ / 1000
			pr.JobExecSec[specs[i].Name] = st.ExecSec()
			energies = append(energies, st.EnergyPerNodeJ/1000)
		}
		pr.MakespanSec = lastEnd - firstSubmit
		pr.AvgEnergyPerNodeKJ = stats.MustMean(energies)
		e.close()
		switch policy {
		case powermgr.PolicyProportional:
			res.Proportional = pr
		case powermgr.PolicyFPP:
			res.FPP = pr
		}
	}
	return res, nil
}

// EnergyImprovementPercent returns FPP's per-job energy-per-node
// improvement over proportional sharing (positive = FPP better). The
// paper reports 1.26%.
func (r *QueueResult) EnergyImprovementPercent() float64 {
	return -stats.PercentChange(r.Proportional.AvgEnergyPerNodeKJ, r.FPP.AvgEnergyPerNodeKJ)
}

// Render prints the §IV-E comparison.
func (r *QueueResult) Render() string {
	rows := [][]string{
		{"proportional", f0(r.Proportional.MakespanSec), f2(r.Proportional.AvgEnergyPerNodeKJ)},
		{"fpp", f0(r.FPP.MakespanSec), f2(r.FPP.AvgEnergyPerNodeKJ)},
	}
	out := "Job queue (10 jobs, 16-node Lassen allocation)\n"
	out += table([]string{"policy", "makespan_s", "avg_energy_per_node_kJ"}, rows)
	out += fmt.Sprintf("\nFPP energy-per-node improvement over proportional: %.2f%%\n",
		r.EnergyImprovementPercent())
	return out
}
