package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// Determinism regression: the experiment CSVs are published artifacts, so
// the same seed (and, for chaos, the same fault plan — it derives from
// the seed) must reproduce them byte for byte, run to run and regardless
// of GOMAXPROCS. Host wall-clock columns (headers ending in _ms) are the
// only sanctioned nondeterminism and are stripped before comparison.

// stripVolatileColumns removes every column whose header ends in "_ms"
// from a CSV rendering.
func stripVolatileColumns(t *testing.T, csv string) string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty CSV")
	}
	header := strings.Split(lines[0], ",")
	keep := make([]int, 0, len(header))
	for i, h := range header {
		if !strings.HasSuffix(h, "_ms") {
			keep = append(keep, i)
		}
	}
	var b strings.Builder
	for _, line := range lines {
		cells := strings.Split(line, ",")
		if len(cells) != len(header) {
			t.Fatalf("ragged CSV row (%d cells, header %d): %q", len(cells), len(header), line)
		}
		for j, i := range keep {
			if j > 0 {
				b.WriteString(",")
			}
			b.WriteString(cells[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// determinismTargets are the seeded experiments whose CSV output the
// regression pins: a scale sweep (byte counters + queries), a chaos sweep
// (a full fault plan riding the seed) and a policy comparison (the
// power-aware scheduler end to end).
func determinismTargets() map[string]func(Options) (string, error) {
	return map[string]func(Options) (string, error){
		"scale": func(o Options) (string, error) {
			r, err := Scale(o)
			if err != nil {
				return "", err
			}
			return r.RenderCSV(), nil
		},
		"chaos": func(o Options) (string, error) {
			r, err := Chaos(o)
			if err != nil {
				return "", err
			}
			return r.RenderCSV(), nil
		},
		"policy": func(o Options) (string, error) {
			r, err := Policy(o)
			if err != nil {
				return "", err
			}
			return r.RenderCSV(), nil
		},
	}
}

// TestDeterministicCSVAcrossRuns runs each target twice with the same
// seed and requires byte-identical CSV (volatile columns stripped).
func TestDeterministicCSVAcrossRuns(t *testing.T) {
	for name, run := range determinismTargets() {
		t.Run(name, func(t *testing.T) {
			opts := Options{Quick: true, Seed: DefaultSeed + 11}
			first, err := run(opts)
			if err != nil {
				t.Fatal(err)
			}
			second, err := run(opts)
			if err != nil {
				t.Fatal(err)
			}
			a, b := stripVolatileColumns(t, first), stripVolatileColumns(t, second)
			if a != b {
				t.Fatalf("same-seed runs diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
			}
		})
	}
}

// TestDeterministicCSVAcrossGOMAXPROCS pins scheduler-independence: the
// simulation is single-threaded by design, so pinning the runtime to one
// P must not change a single byte of output.
func TestDeterministicCSVAcrossGOMAXPROCS(t *testing.T) {
	for name, run := range determinismTargets() {
		t.Run(name, func(t *testing.T) {
			opts := Options{Quick: true, Seed: DefaultSeed + 13}
			parallel, err := run(opts)
			if err != nil {
				t.Fatal(err)
			}
			prev := runtime.GOMAXPROCS(1)
			serial, serr := run(opts)
			runtime.GOMAXPROCS(prev)
			if serr != nil {
				t.Fatal(serr)
			}
			a, b := stripVolatileColumns(t, parallel), stripVolatileColumns(t, serial)
			if a != b {
				t.Fatalf("GOMAXPROCS=%d vs 1 diverged:\n--- default ---\n%s--- serial ---\n%s", prev, a, b)
			}
		})
	}
}

// TestStripVolatileColumns pins the stripper itself: only _ms-suffixed
// columns go, everything else survives untouched.
func TestStripVolatileColumns(t *testing.T) {
	in := "nodes,raw_ms,avg_w,agg_ms\n8,1.23,400,0.5\n64,9.87,410,0.6\n"
	want := "nodes,avg_w\n8,400\n64,410\n"
	if got := stripVolatileColumns(t, in); got != want {
		t.Fatalf("stripped CSV:\n%q\nwant:\n%q", got, want)
	}
	if got := fmt.Sprintf("%q", stripVolatileColumns(t, "a,b\n1,2\n")); got != `"a,b\n1,2\n"` {
		t.Fatalf("no-volatile CSV changed: %s", got)
	}
}
