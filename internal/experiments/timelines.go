package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/flux/job"
)

// TimelineResult is a single-node power timeline for any catalog
// application — the generalization of Figure 1 to the workloads the paper
// discusses but does not plot ("We don't show these timelines here due to
// lack of space", §II-D).
type TimelineResult struct {
	App    string
	System cluster.System
	Points []TimelinePoint
}

// Timeline runs one application on a single node and returns its monitor
// timeline. sizeFactor stretches short reference runs so several phases
// are visible.
func Timeline(opts Options, system cluster.System, app string, sizeFactor float64) (*TimelineResult, error) {
	opts = opts.withDefaults()
	e, err := newEnv(envConfig{
		system:      system,
		nodes:       1,
		seed:        opts.Seed,
		withMonitor: true,
	})
	if err != nil {
		return nil, err
	}
	defer e.close()
	id, err := e.c.Submit(job.Spec{App: app, Nodes: 1, SizeFactor: sizeFactor})
	if err != nil {
		return nil, err
	}
	if _, idle := e.c.RunUntilIdle(2 * time.Hour); !idle {
		return nil, fmt.Errorf("timeline: %s did not finish", app)
	}
	jp, err := e.mon.Query(id)
	if err != nil {
		return nil, err
	}
	return &TimelineResult{App: app, System: system, Points: timelineFor(jp, 0)}, nil
}

// AllTimelines produces the five-application set the paper describes:
// flat LAMMPS/GEMM/NQueens, periodic Quicksilver, minor-phase Laghos.
func AllTimelines(opts Options) ([]*TimelineResult, error) {
	specs := []struct {
		app  string
		size float64
	}{
		{"lammps", 1},
		{"gemm", 0.3},
		{"quicksilver", 10},
		{"laghos", 10},
		{"nqueens", 0.5},
	}
	var out []*TimelineResult
	for _, s := range specs {
		r, err := Timeline(opts, cluster.Lassen, s.app, s.size)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Render prints the timeline.
func (r *TimelineResult) Render() string {
	return fmt.Sprintf("%s on %s (1 node):\n", r.App, r.System) + renderTimeline(r.Points)
}
