// Package experiments regenerates every table and figure in the paper's
// evaluation (§IV). Each experiment builds the exact scenario the paper
// describes — system, node counts, applications, scaling factors, power
// policies — runs it on the simulated cluster, and reports rows/series in
// the same shape the paper prints.
//
// Absolute numbers come from the calibrated models in internal/apps and
// internal/hw; the assertions that matter (and that the test suite pins)
// are the paper's qualitative results: who wins, by roughly what factor,
// and where the crossovers fall. EXPERIMENTS.md records paper-vs-measured
// for every entry.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermgr"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/simtime"
)

// Options are shared experiment knobs.
type Options struct {
	// Seed drives all randomness; fixed default keeps published outputs
	// reproducible.
	Seed int64
	// Quick shrinks repetition counts for fast CI runs where the
	// experiment allows it.
	Quick bool
}

// DefaultSeed is used by the CLI and benchmarks.
const DefaultSeed = 20240601

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	return o
}

// env is a monitored (and optionally managed) cluster ready to run jobs.
type env struct {
	c   *cluster.Cluster
	mon *powermon.Client
	pm  *powermgr.Client
}

// envConfig assembles a cluster with the power modules loaded.
type envConfig struct {
	system       cluster.System
	nodes        int
	seed         int64
	jitter       bool
	sensorNoiseW float64
	withMonitor  bool
	manager      *powermgr.Config // nil = no manager
	monitorCfg   powermon.Config
	overheadFrac float64 // <0 selects per-system default
	schedPolicy  string  // "" = FCFS
	schedBudgetW float64 // 0 = node-count admission only
}

func newEnv(cfg envConfig) (*env, error) {
	overhead := cfg.overheadFrac
	c, err := cluster.New(cluster.Config{
		System:              cfg.system,
		Nodes:               cfg.nodes,
		Seed:                cfg.seed,
		Jitter:              cfg.jitter,
		SensorNoiseW:        cfg.sensorNoiseW,
		MonitorOverheadFrac: overhead,
		SchedPolicy:         cfg.schedPolicy,
		SchedBudgetW:        cfg.schedBudgetW,
	})
	if err != nil {
		return nil, err
	}
	e := &env{c: c}
	if cfg.withMonitor {
		if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
			return powermon.New(cfg.monitorCfg)
		}); err != nil {
			return nil, err
		}
		e.mon = powermon.NewClient(c.Inst.Root())
	}
	if cfg.manager != nil {
		mcfg := *cfg.manager
		if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
			return powermgr.New(mcfg)
		}); err != nil {
			return nil, err
		}
		e.pm = powermgr.NewClient(c.Inst.Root())
	}
	return e, nil
}

func (e *env) close() { e.c.Close() }

// runJob submits one job and runs the cluster until it drains, returning
// ground-truth stats and the monitor's view (when loaded).
func (e *env) runJob(spec job.Spec, limit time.Duration) (cluster.JobStats, *powermon.Summary, error) {
	id, err := e.c.Submit(spec)
	if err != nil {
		return cluster.JobStats{}, nil, err
	}
	if _, idle := e.c.RunUntilIdle(limit); !idle {
		return cluster.JobStats{}, nil, fmt.Errorf("experiments: job %q did not finish within %v", spec.App, limit)
	}
	st, ok := e.c.Stats(id)
	if !ok {
		return cluster.JobStats{}, nil, fmt.Errorf("experiments: no stats for job %d", id)
	}
	if e.mon == nil {
		return st, nil, nil
	}
	jp, err := e.mon.Query(id)
	if err != nil {
		return st, nil, err
	}
	sum, err := powermon.Summarize(jp)
	if err != nil {
		return st, nil, err
	}
	return st, &sum, nil
}

// TimelinePoint is one sample of a node-power timeline (figures 1, 5-7).
type TimelinePoint struct {
	TimeSec  float64
	NodeW    float64
	CPUW     float64 // all sockets
	MemW     float64 // -1 when unsupported
	GPU0W    float64 // first GPU sensor
	TotalGPU float64
}

// timelineFor extracts one node's series from a monitor query.
func timelineFor(jp powermon.JobPower, rank int32) []TimelinePoint {
	var out []TimelinePoint
	for _, n := range jp.Nodes {
		if n.Rank != rank {
			continue
		}
		for _, s := range n.Samples {
			p := TimelinePoint{
				TimeSec:  s.Timestamp - jp.StartSec,
				NodeW:    s.TotalWatts(),
				CPUW:     s.CPUWatts(),
				MemW:     s.MemWatts(),
				TotalGPU: s.TotalGPUWatts(),
			}
			if len(s.GPUWatts) > 0 {
				p.GPU0W = s.GPUWatts[0]
			}
			out = append(out, p)
		}
	}
	return out
}

// clusterPowerSampler records total cluster power every interval,
// mirroring how Table III's max/avg cluster power was measured ("summed
// across all nodes at all points in time when sampled every 2 seconds").
type clusterPowerSampler struct {
	samples []float64
	timer   *simtime.Timer
}

func sampleClusterPower(c *cluster.Cluster, every time.Duration) *clusterPowerSampler {
	s := &clusterPowerSampler{}
	s.timer = c.Sched.TickEvery(every, func(simtime.Time) {
		s.samples = append(s.samples, c.TotalPowerW())
	})
	return s
}

func (s *clusterPowerSampler) stop() { s.timer.Stop() }

func (s *clusterPowerSampler) maxAvg() (maxW, avgW float64) {
	if len(s.samples) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, v := range s.samples {
		sum += v
		if v > maxW {
			maxW = v
		}
	}
	return maxW, sum / float64(len(s.samples))
}

// csvTable renders header+rows as RFC-4180-ish CSV for plotting scripts.
func csvTable(header []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// table renders rows with aligned columns for CLI output.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
