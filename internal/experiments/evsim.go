package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/flux/job"
)

// EvsimRow is one fleet size of the event-core scaling benchmark: the
// host wall-clock cost of simulating one second of cluster time, on both
// engines, with the active-job count held fixed while idle nodes grow.
type EvsimRow struct {
	Nodes      int
	ActiveJobs int
	SimSec     float64
	// TickWallMs / EventWallMs are the host milliseconds each engine spent
	// advancing the measurement window (cluster construction excluded).
	TickWallMs  float64
	EventWallMs float64
	// TickMsPerSimSec / EventMsPerSimSec normalize to wall milliseconds
	// per simulated second.
	TickMsPerSimSec  float64
	EventMsPerSimSec float64
	// EventRatio is this row's event-engine cost relative to the smallest
	// fleet's — the "flat cost" number the suite gates at 3x.
	EventRatio float64
}

// EvsimResult is the event-core scaling benchmark.
type EvsimResult struct {
	Rows []EvsimRow
	// MaxRatio is the gate: the largest EventRatio observed (how much the
	// per-simulated-second cost grew from the smallest to the largest
	// fleet at fixed active work).
	MaxRatio float64
}

// evsimMaxRatio is the acceptance bound: growing the idle fleet 50x may
// cost at most this factor in wall-clock per simulated second. A
// tick-style engine whose cost scaled with fleet size would blow far
// past it; the discrete-event core, whose cost follows active work,
// stays near 1x.
const evsimMaxRatio = 3.0

// Evsim measures wall-clock-per-simulated-second as idle nodes grow with
// the active-job count pinned. Each fleet size runs the same 64 two-node
// jobs (long GEMMs that never finish inside the window) on the tick
// engine and on the event engine; only the simulation window is timed.
// It errors when the event engine's cost is not flat (MaxRatio above
// 3x), which is what gates the benchmark in CI.
func Evsim(o Options) (*EvsimResult, error) {
	o = o.withDefaults()
	sizes := []int{1000, 8000, 50000}
	simWindow := 30 * time.Second
	if o.Quick {
		sizes = []int{1000, 4000}
		simWindow = 10 * time.Second
	}
	const activeJobs = 64
	res := &EvsimResult{}
	for _, n := range sizes {
		row := EvsimRow{Nodes: n, ActiveJobs: activeJobs, SimSec: simWindow.Seconds()}
		var err error
		if row.TickWallMs, err = evsimOne(cluster.EngineTick, n, activeJobs, o.Seed, simWindow); err != nil {
			return nil, fmt.Errorf("evsim: tick engine, %d nodes: %w", n, err)
		}
		if row.EventWallMs, err = evsimOne(cluster.EngineEvent, n, activeJobs, o.Seed, simWindow); err != nil {
			return nil, fmt.Errorf("evsim: event engine, %d nodes: %w", n, err)
		}
		row.TickMsPerSimSec = row.TickWallMs / row.SimSec
		row.EventMsPerSimSec = row.EventWallMs / row.SimSec
		res.Rows = append(res.Rows, row)
	}
	base := res.Rows[0].EventMsPerSimSec
	for i := range res.Rows {
		if base > 0 {
			res.Rows[i].EventRatio = res.Rows[i].EventMsPerSimSec / base
		}
		if res.Rows[i].EventRatio > res.MaxRatio {
			res.MaxRatio = res.Rows[i].EventRatio
		}
	}
	if res.MaxRatio > evsimMaxRatio {
		return res, fmt.Errorf("evsim: event-engine cost grew %.2fx from %d to the largest fleet (gate %.1fx): %s",
			res.MaxRatio, sizes[0], evsimMaxRatio, res.RenderCSV())
	}
	return res, nil
}

// evsimOne builds one cluster on the given engine, starts the fixed
// active set, and times a RunFor window.
func evsimOne(engine string, nodes, activeJobs int, seed int64, window time.Duration) (float64, error) {
	c, err := cluster.New(cluster.Config{
		System: cluster.Lassen,
		Nodes:  nodes,
		Seed:   seed,
		Engine: engine,
	})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	for i := 0; i < activeJobs; i++ {
		// RepFactor 100 GEMMs run for hours of simulated time: the active
		// set stays exactly activeJobs for the whole window.
		if _, err := c.Submit(job.Spec{App: "gemm", Nodes: 2, RepFactor: 100}); err != nil {
			return 0, err
		}
	}
	c.RunFor(time.Second) // warm-up: dispatch, first demand installs
	start := time.Now()
	c.RunFor(window)
	return float64(time.Since(start)) / float64(time.Millisecond), nil
}

func (r *EvsimResult) tabular() ([]string, [][]string) {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.ActiveJobs),
			f0(row.SimSec),
			f2(row.TickMsPerSimSec),
			f2(row.EventMsPerSimSec),
			f2(row.EventRatio),
		})
	}
	return []string{"nodes", "active_jobs", "sim_s",
		"tick_wall_ms_per_sim_s", "event_wall_ms_per_sim_s", "event_ratio_vs_base"}, rows
}

// Render prints the benchmark.
func (r *EvsimResult) Render() string {
	header, rows := r.tabular()
	return "Evsim: wall-clock cost per simulated second vs fleet size (fixed 64 active jobs)\n" +
		table(header, rows) +
		fmt.Sprintf("event-engine cost follows active work, not fleet size: max growth %.2fx (gate %.1fx).\n",
			r.MaxRatio, evsimMaxRatio)
}

// RenderCSV emits the benchmark as CSV.
func (r *EvsimResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}

// RenderJSON emits the benchmark in the BENCH_evsim.json shape CI
// publishes as an artifact.
func (r *EvsimResult) RenderJSON() (string, error) {
	out, err := json.MarshalIndent(struct {
		Experiment string     `json:"experiment"`
		GateRatio  float64    `json:"gate_ratio"`
		MaxRatio   float64    `json:"max_ratio"`
		Rows       []EvsimRow `json:"rows"`
	}{Experiment: "evsim", GateRatio: evsimMaxRatio, MaxRatio: r.MaxRatio, Rows: r.Rows}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
