package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/chaos"
	"fluxpower/internal/flux/job"
)

// ChaosRow is one point of the fault-probability sweep: how the power
// query plane degrades as the TBON fabric loses messages.
type ChaosRow struct {
	DropProb float64
	// Queries is the number of aggregate power queries issued under fire;
	// OK answered completely, Partial answered with unreachable subtrees
	// flagged, Failed did not answer at all.
	Queries int
	OK      int
	Partial int
	Failed  int
	// AvgMissing is the mean number of ranks a liveness sweep reported
	// unreachable while faults were active.
	AvgMissing float64
	// Violations counts invariants broken after the faults cleared and the
	// system quiesced — the production-grade bar is zero at every loss
	// rate: degraded answers are acceptable, leaked state is not.
	Violations int
}

// ChaosResult is the fault-injection sweep over drop probabilities.
type ChaosResult struct {
	Nodes int
	Rows  []ChaosRow
}

// Chaos sweeps per-message drop probability on every TBON link of a
// monitored 16-node Lassen cluster and measures, at each loss rate, the
// query plane's success/partial/failure split — then asserts the chaos
// invariants (no leaked matchtags, reduce conservation, archive
// monotonicity) once the faults clear. It is the CLI face of the chaos
// harness in internal/flux/chaos.
func Chaos(o Options) (*ChaosResult, error) {
	o = o.withDefaults()
	probs := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}
	rounds := 15
	if o.Quick {
		probs = []float64{0, 0.05, 0.2}
		rounds = 8
	}
	res := &ChaosResult{Nodes: 16}
	for i, p := range probs {
		row, err := chaosOne(res.Nodes, o.Seed+int64(i), p, rounds)
		if err != nil {
			return nil, fmt.Errorf("chaos: drop %.2f: %w", p, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func chaosOne(nodes int, seed int64, dropProb float64, rounds int) (ChaosRow, error) {
	row := ChaosRow{DropProb: dropProb}
	plan := chaos.Plan{Seed: seed}
	if dropProb > 0 {
		plan.Links = []chaos.LinkRule{{
			From: chaos.AnyRank, To: chaos.AnyRank, DropProb: dropProb,
		}}
	}
	inj := chaos.New(plan)
	c, err := cluster.New(cluster.Config{
		System:      cluster.Lassen,
		Nodes:       nodes,
		Seed:        seed,
		WrapLink:    inj.WrapLink,
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		return row, err
	}
	defer c.Close()
	inj.Bind(c.Sched)

	var live *chaos.Liveness
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		l := chaos.NewLiveness(2 * time.Second)
		if rank == 0 {
			live = l
		}
		return l
	}); err != nil {
		return row, err
	}
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return powermon.New(powermon.Config{
			SampleInterval: 2 * time.Second,
			CollectTimeout: 2 * time.Second,
		})
	}); err != nil {
		return row, err
	}
	id, err := c.Submit(job.Spec{Name: "chaos-sweep", App: "gemm", Nodes: nodes, RepFactor: 40})
	if err != nil {
		return row, err
	}
	c.RunFor(10 * time.Second) // fault-free warm-up

	inj.Arm()
	mon := powermon.NewClient(c.Inst.Root())
	missingSum := 0
	for r := 0; r < rounds; r++ {
		c.RunFor(4 * time.Second)
		ja, err := mon.QueryAggregate(id)
		row.Queries++
		switch {
		case err != nil:
			row.Failed++
		case ja.Partial:
			row.Partial++
		default:
			row.OK++
		}
		if res, err := live.Sweep(nil, 2*time.Second); err == nil {
			missingSum += res.Missing
		}
	}
	row.AvgMissing = float64(missingSum) / float64(rounds)
	inj.Disarm()
	c.RunFor(10 * time.Second)
	row.Violations = len(chaos.Check(chaos.CheckConfig{
		Brokers:            c.Inst.Brokers,
		Injector:           inj,
		Liveness:           live,
		Monitor:            true,
		RPCTimeout:         2 * time.Second,
		ExpectAllReachable: true,
	}))
	return row, nil
}

func (r *ChaosResult) tabular() ([]string, [][]string) {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", row.DropProb),
			fmt.Sprintf("%d", row.Queries),
			fmt.Sprintf("%d", row.OK),
			fmt.Sprintf("%d", row.Partial),
			fmt.Sprintf("%d", row.Failed),
			fmt.Sprintf("%.1f", row.AvgMissing),
			fmt.Sprintf("%d", row.Violations),
		})
	}
	return []string{"drop_prob", "queries", "ok", "partial", "failed",
		"avg_missing_ranks", "violations"}, rows
}

// Render prints the sweep.
func (r *ChaosResult) Render() string {
	header, rows := r.tabular()
	return fmt.Sprintf("Chaos: aggregate power queries on a %d-node TBON vs per-link drop probability\n", r.Nodes) +
		table(header, rows) +
		"partial answers flag their unreachable subtrees explicitly (reduce conservation);\n" +
		"violations counts invariants broken after faults clear — the bar is zero.\n"
}

// RenderCSV emits the sweep as CSV for plotting.
func (r *ChaosResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}
