package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/fanout"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/powerapi"
	"fluxpower/internal/stats"
)

// Gates for the fanout benchmark, enforced by Fanout() and the CI quick
// run. Delivery latency is wall-clock from a frame entering its ring to
// a subscriber's Write seeing it; on one core the p99 is essentially
// "how long a full fan-out of one sample burst to every client takes".
// Allocations per delivered event must stay O(1) and small — the whole
// design renders each frame once and shares the bytes.
const (
	fanoutMaxP99Ms         = 2_000.0
	fanoutMaxAllocsPerEvt  = 2.0
	fanoutMeasuredBursts   = 3
	fanoutSampleIntervalMs = 2000
)

// FanoutRow is one client-count point of the broadcast-plane benchmark.
type FanoutRow struct {
	Clients  int `json:"clients"`
	Replicas int `json:"replicas"`
	// UpstreamSubs is the hub's live bus subscriptions during the
	// measured window — the tentpole invariant says exactly 1 (one job),
	// regardless of Clients.
	UpstreamSubs int `json:"upstream_subs"`
	// Frames appended to the ring and frames delivered to subscribers
	// during the measured window.
	Frames     uint64 `json:"frames"`
	Deliveries uint64 `json:"deliveries"`
	// Delivery latency percentiles in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// AllocsPerEvent is heap allocations per delivered frame over the
	// measured window (sim advance included).
	AllocsPerEvent float64 `json:"allocs_per_event"`
	Evictions      uint64  `json:"evictions"`
}

// FanoutResult is the broadcast-plane benchmark's output.
type FanoutResult struct {
	Nodes int         `json:"nodes"`
	Rows  []FanoutRow `json:"rows"`
	// ResumeByteIdentical reports the snapshot-then-delta protocol
	// check: an interrupted-and-resumed stream's concatenation is
	// byte-identical to a never-disconnected reference client.
	ResumeByteIdentical bool `json:"resume_byte_identical"`
}

// fanoutSink is the experiment's SSE client: an http.ResponseWriter
// that discards frame bytes after parsing the leading "id:" line and
// recording delivery latency against the ring's publish timestamp.
// Everything on the Write path is allocation-free.
type fanoutSink struct {
	hub       *fanout.Hub
	jobID     uint64
	shard     *latShard
	recording *atomic.Bool
}

// latShard is a mutex-guarded histogram; sinks are spread across shards
// so 100k concurrent Writes do not serialize on one lock.
type latShard struct {
	mu sync.Mutex
	h  *stats.Histogram
}

func (s *fanoutSink) Header() http.Header  { return http.Header{} }
func (s *fanoutSink) WriteHeader(code int) {}
func (s *fanoutSink) Flush()               {}

func (s *fanoutSink) Write(p []byte) (int, error) {
	if !s.recording.Load() {
		return len(p), nil
	}
	// Frames look like "id: <seq>\nevent: ...". Parse the sequence
	// without allocating.
	if len(p) < 5 || p[0] != 'i' || p[1] != 'd' || p[2] != ':' || p[3] != ' ' {
		return len(p), nil
	}
	var seq uint64
	for i := 4; i < len(p) && p[i] != '\n'; i++ {
		if p[i] < '0' || p[i] > '9' {
			return len(p), nil
		}
		seq = seq*10 + uint64(p[i]-'0')
	}
	if at, ok := s.hub.FrameTime(s.jobID, seq); ok {
		ms := float64(time.Since(at)) / float64(time.Millisecond)
		s.shard.mu.Lock()
		s.shard.h.Observe(ms)
		s.shard.mu.Unlock()
	}
	return len(p), nil
}

// Fanout measures the broadcast plane at scale: an 8-node Lassen
// instance publishes live samples for one running job, two gateway
// replicas share a fanout hub, and K concurrent SSE clients stream the
// job through the full HTTP handler path. Each row verifies the
// tentpole invariant — exactly ONE upstream bus subscription however
// many clients — and gates p99 delivery latency and allocations per
// delivered event. A follow-up check replays the snapshot-then-delta
// protocol and requires the resumed stream to be byte-identical to an
// uninterrupted reference.
func Fanout(o Options) (*FanoutResult, error) {
	o = o.withDefaults()
	const nodes = 8
	clientCounts := []int{1_000, 10_000, 100_000}
	if o.Quick {
		clientCounts = []int{1_000, 10_000}
	}

	res := &FanoutResult{Nodes: nodes}
	for _, clients := range clientCounts {
		row, err := fanoutOne(o, nodes, clients)
		if err != nil {
			return nil, fmt.Errorf("fanout: %d clients: %w", clients, err)
		}
		res.Rows = append(res.Rows, row)
	}

	ok, err := fanoutResumeByteIdentical(o)
	if err != nil {
		return nil, fmt.Errorf("fanout: resume check: %w", err)
	}
	res.ResumeByteIdentical = ok

	// Gate: render the offending table into the error so a CI failure is
	// self-explanatory.
	for _, row := range res.Rows {
		switch {
		case row.UpstreamSubs != 1:
			return nil, fmt.Errorf("fanout gate: %d clients held %d upstream subscriptions, want exactly 1\n%s",
				row.Clients, row.UpstreamSubs, res.Render())
		case row.P99Ms > fanoutMaxP99Ms:
			return nil, fmt.Errorf("fanout gate: %d clients p99 %.1fms > %.1fms\n%s",
				row.Clients, row.P99Ms, fanoutMaxP99Ms, res.Render())
		case row.AllocsPerEvent > fanoutMaxAllocsPerEvt:
			return nil, fmt.Errorf("fanout gate: %d clients %.2f allocs/event > %.2f\n%s",
				row.Clients, row.AllocsPerEvent, fanoutMaxAllocsPerEvt, res.Render())
		}
	}
	if !res.ResumeByteIdentical {
		return nil, fmt.Errorf("fanout gate: resumed stream not byte-identical to reference\n%s", res.Render())
	}
	return res, nil
}

func fanoutOne(o Options, nodes, clients int) (FanoutRow, error) {
	const replicas = 2
	row := FanoutRow{Clients: clients, Replicas: replicas}

	c, err := cluster.New(cluster.Config{System: cluster.Lassen, Nodes: nodes, Seed: o.Seed})
	if err != nil {
		return row, err
	}
	defer c.Close()
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return powermon.New(powermon.Config{PublishSamples: true})
	}); err != nil {
		return row, err
	}
	hub, err := fanout.New(fanout.Config{Broker: c.Inst.Root(), RingFrames: 512})
	if err != nil {
		return row, err
	}
	defer hub.Close()
	var gws []*powerapi.Gateway
	for i := 0; i < replicas; i++ {
		gw, err := powerapi.New(powerapi.Config{Hub: hub})
		if err != nil {
			return row, err
		}
		defer gw.Close()
		gws = append(gws, gw)
	}

	// One long job owns the whole machine; RepFactor stretches it far
	// past the measured window.
	id, err := c.Submit(job.Spec{App: "gemm", Nodes: nodes, RepFactor: 100})
	if err != nil {
		return row, err
	}
	hub.Sync(func() { c.RunFor(5 * time.Second) })

	// Spread clients across replicas through the full handler path.
	var recording atomic.Bool
	shards := make([]*latShard, 64)
	for i := range shards {
		shards[i] = &latShard{h: stats.NewHistogram(0.01, 600_000, 64)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	path := fmt.Sprintf("/v1/jobs/%d/stream", id)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink := &fanoutSink{hub: hub, jobID: id, shard: shards[i%len(shards)], recording: &recording}
			req := httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
			gws[i%replicas].ServeHTTP(sink, req)
		}(i)
	}
	waitFor := func(what string, timeout time.Duration, cond func(fanout.Metrics) bool) error {
		deadline := time.Now().Add(timeout)
		for {
			if m := hub.Metrics(); cond(m) {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("timeout waiting for %s: %+v", what, hub.Metrics())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Attach barrier: every client subscribed, every catch-up snapshot
	// delivered. The sim cannot advance while we wait, so the ring is
	// frozen and the barrier is exact.
	if err := waitFor("attach", 10*time.Minute, func(m fanout.Metrics) bool {
		return m.Subscribers == clients
	}); err != nil {
		return row, err
	}
	base := hub.Metrics()
	if err := waitFor("snapshot catch-up", 10*time.Minute, func(m fanout.Metrics) bool {
		return m.SnapshotsServed >= uint64(clients)
	}); err != nil {
		return row, err
	}

	// Measured window: advance the sim one sampling interval at a time
	// and barrier on full delivery — every client has seen every frame —
	// so MemStats brackets a quiescent region.
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	recording.Store(true)
	start := hub.Metrics()
	for burst := 0; burst < fanoutMeasuredBursts; burst++ {
		hub.Sync(func() { c.RunFor(fanoutSampleIntervalMs * time.Millisecond) })
		if err := waitFor("burst delivery", 10*time.Minute, func(m fanout.Metrics) bool {
			appended := m.FramesAppended - start.FramesAppended
			delivered := m.FramesDelivered - start.FramesDelivered
			return delivered >= uint64(clients)*appended
		}); err != nil {
			return row, err
		}
	}
	recording.Store(false)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	end := hub.Metrics()

	row.UpstreamSubs = end.SampleSubs
	row.Frames = end.FramesAppended - start.FramesAppended
	row.Deliveries = end.FramesDelivered - start.FramesDelivered
	row.Evictions = end.Evictions - base.Evictions
	if row.Deliveries > 0 {
		row.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(row.Deliveries)
	}
	merged := stats.NewHistogram(0.01, 600_000, 64)
	for _, s := range shards {
		s.mu.Lock()
		err := merged.MergeHistogram(s.h)
		s.mu.Unlock()
		if err != nil {
			return row, err
		}
	}
	row.P50Ms = merged.Quantile(0.50)
	row.P99Ms = merged.Quantile(0.99)

	// Teardown: disconnect every client and wait for the handlers.
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Minute):
		return row, errors.New("clients did not disconnect")
	}
	return row, nil
}

// fanoutResumeByteIdentical replays the snapshot-then-delta protocol on
// a small instance: a reference subscriber streams a job uninterrupted;
// a second subscriber disconnects mid-stream and reconnects presenting
// its last sequence. The interrupted client's two sessions concatenated
// must equal the reference byte-for-byte.
func fanoutResumeByteIdentical(o Options) (bool, error) {
	c, err := cluster.New(cluster.Config{System: cluster.Lassen, Nodes: 2, Seed: o.Seed})
	if err != nil {
		return false, err
	}
	defer c.Close()
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return powermon.New(powermon.Config{PublishSamples: true})
	}); err != nil {
		return false, err
	}
	hub, err := fanout.New(fanout.Config{Broker: c.Inst.Root(), RingFrames: 1 << 16})
	if err != nil {
		return false, err
	}
	defer hub.Close()
	id, err := c.Submit(job.Spec{App: "gemm", Nodes: 2})
	if err != nil {
		return false, err
	}
	hub.Sync(func() { c.RunFor(5 * time.Second) })

	ref, err := hub.Attach(context.Background(), id, fanout.AttachOptions{})
	if err != nil {
		return false, err
	}
	defer ref.Close()
	intr, err := hub.Attach(context.Background(), id, fanout.AttachOptions{})
	if err != nil {
		return false, err
	}

	// drain pulls everything currently buffered for a subscriber.
	drain := func(sub *fanout.Subscriber, dst *bytes.Buffer, lastSeq *uint64) (terminal bool, err error) {
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			frames, err := sub.Next(ctx, nil)
			cancel()
			if errors.Is(err, io.EOF) {
				return true, nil
			}
			if errors.Is(err, context.DeadlineExceeded) {
				return false, nil
			}
			if err != nil {
				return false, err
			}
			for _, f := range frames {
				dst.Write(f.Data)
				if f.Seq > 0 {
					*lastSeq = f.Seq
				}
			}
		}
	}

	var refBody, part1, part2 bytes.Buffer
	var refSeq, intrSeq uint64
	hub.Sync(func() { c.RunFor(10 * time.Second) })
	if _, err := drain(ref, &refBody, &refSeq); err != nil {
		return false, err
	}
	if _, err := drain(intr, &part1, &intrSeq); err != nil {
		return false, err
	}
	// Interrupt, produce more frames while disconnected, reconnect with
	// the last sequence (the SSE layer's Last-Event-ID).
	intr.Close()
	hub.Sync(func() { c.RunFor(10 * time.Second) })
	resumed, err := hub.Attach(context.Background(), id,
		fanout.AttachOptions{ResumeSeq: intrSeq, HasResume: true})
	if err != nil {
		return false, err
	}
	defer resumed.Close()

	// Run the job to completion; both streams must end with done.
	for {
		var idle bool
		hub.Sync(func() { _, idle = c.RunUntilIdle(time.Hour) })
		refDone, err := drain(ref, &refBody, &refSeq)
		if err != nil {
			return false, err
		}
		resDone, err := drain(resumed, &part2, &intrSeq)
		if err != nil {
			return false, err
		}
		if refDone && resDone {
			break
		}
		if idle && (!refDone || !resDone) {
			return false, errors.New("cluster idle but streams not terminated")
		}
	}

	got := append(append([]byte{}, part1.Bytes()...), part2.Bytes()...)
	if len(part1.Bytes()) == 0 || len(part1.Bytes()) >= len(refBody.Bytes()) {
		return false, fmt.Errorf("degenerate interruption: part1 %dB of %dB reference",
			part1.Len(), refBody.Len())
	}
	return bytes.Equal(got, refBody.Bytes()), nil
}

func (r *FanoutResult) tabular() ([]string, [][]string) {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Clients),
			fmt.Sprintf("%d", row.Replicas),
			fmt.Sprintf("%d", row.UpstreamSubs),
			fmt.Sprintf("%d", row.Frames),
			fmt.Sprintf("%d", row.Deliveries),
			fmt.Sprintf("%.2f", row.P50Ms),
			fmt.Sprintf("%.2f", row.P99Ms),
			fmt.Sprintf("%.2f", row.AllocsPerEvent),
			fmt.Sprintf("%d", row.Evictions),
		})
	}
	return []string{"clients", "replicas", "upstream_subs", "frames", "deliveries",
		"p50_ms", "p99_ms", "allocs_per_event", "evictions"}, rows
}

// Render prints the broadcast-plane table.
func (r *FanoutResult) Render() string {
	header, rows := r.tabular()
	return fmt.Sprintf("Fanout: SSE broadcast plane, %d-node Lassen, one job, replicated gateway tier\n", r.Nodes) +
		table(header, rows) +
		fmt.Sprintf("upstream_subs is the hub's bus subscriptions during the run — exactly one per job\n"+
			"no matter how many clients. Delivery p99 gate %.0fms; allocs/event gate %.1f;\n"+
			"snapshot-then-delta resume byte-identical: %v.\n",
			fanoutMaxP99Ms, fanoutMaxAllocsPerEvt, r.ResumeByteIdentical)
}

// RenderCSV emits the table as CSV.
func (r *FanoutResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}

// RenderJSON emits the benchmark in the BENCH_fanout.json shape CI
// publishes as an artifact.
func (r *FanoutResult) RenderJSON() (string, error) {
	out, err := json.MarshalIndent(struct {
		Experiment    string  `json:"experiment"`
		GateP99Ms     float64 `json:"gate_p99_ms"`
		GateAllocsEvt float64 `json:"gate_allocs_per_event"`
		*FanoutResult
	}{Experiment: "fanout", GateP99Ms: fanoutMaxP99Ms, GateAllocsEvt: fanoutMaxAllocsPerEvt, FanoutResult: r}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
