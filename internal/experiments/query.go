package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/flux/transport"
	"fluxpower/internal/query"
)

// QueryRow is one fleet size of the query-pushdown benchmark: a
// history-spanning group-by-job power query answered twice — by
// fetching every rank's plan-selected records to the root (the flat
// baseline every raw-export pipeline pays) and by the in-network
// pushdown that merges partial aggregates at every TBON level.
type QueryRow struct {
	Nodes int
	// Jobs is how many jobs ran inside the window; Groups how many
	// result rows the query returned (must match).
	Jobs   int
	Groups int
	// WindowSec is the queried range.
	WindowSec float64
	// Source is the storage tier the planner selected on every node.
	Source string
	// RawRootBytes / PushRootBytes count bytes arriving at rank 0 over
	// its TBON links during each evaluation.
	RawRootBytes  uint64
	PushRootBytes uint64
	// ByteRatio is RawRootBytes / PushRootBytes — the number the gate
	// holds.
	ByteRatio float64
	// RawWallMs / PushWallMs are host wall-clock times (fetch+reference
	// evaluation vs distributed evaluation).
	RawWallMs  float64
	PushWallMs float64
	// Identical records the correctness contract: the pushdown answer
	// is byte-identical to the single-node reference evaluation over
	// the same fetched records.
	Identical bool
}

// QueryResult is the pushdown-vs-fetch comparison.
type QueryResult struct {
	Rows []QueryRow
	// GateRatio is the acceptance bound applied to the largest fleet;
	// LastRatio is what that fleet measured.
	GateRatio float64
	LastRatio float64
}

// Acceptance bounds on the largest fleet's byte ratio. The full sweep
// replays the paper-scale scenario (792 nodes, week-long window, 10min
// tier); quick mode shrinks the fleet and the window for CI, where the
// per-rank bucket volume — and so the achievable ratio — is far
// smaller.
const (
	queryFullGate  = 50.0
	queryQuickGate = 10.0
)

// Query benchmarks the cluster-wide query engine: each fleet size runs
// four waves of jobs across a long window sampled at 60s and archived
// into a 10-minute tier, then answers one group-by-job average-power
// query over the whole window both ways. The flat baseline ships every
// selected bucket over the root link — O(nodes × buckets); the pushdown
// ships merged partials — O(fanout × groups) — so the ratio grows with
// fleet size and window length. Errors when the largest fleet's ratio
// falls under the gate or when any row's pushdown answer diverges from
// the reference evaluation.
func Query(o Options) (*QueryResult, error) {
	o = o.withDefaults()
	sizes := []int{8, 64, 256, 792}
	window := 7 * 24 * time.Hour
	gate := queryFullGate
	if o.Quick {
		sizes = []int{8, 32, 64}
		window = 24 * time.Hour
		gate = queryQuickGate
	}
	res := &QueryResult{GateRatio: gate}
	for _, n := range sizes {
		row, err := queryOne(n, o.Seed, window)
		if err != nil {
			return nil, fmt.Errorf("query: %d nodes: %w", n, err)
		}
		if !row.Identical {
			return nil, fmt.Errorf("query: %d nodes: pushdown diverged from the reference evaluation", n)
		}
		res.Rows = append(res.Rows, row)
	}
	res.LastRatio = res.Rows[len(res.Rows)-1].ByteRatio
	if res.LastRatio < gate {
		return res, fmt.Errorf("query: %d-node byte ratio %.1fx under the %.0fx gate:\n%s",
			sizes[len(sizes)-1], res.LastRatio, gate, res.RenderCSV())
	}
	return res, nil
}

func queryOne(nodes int, seed int64, window time.Duration) (QueryRow, error) {
	row := QueryRow{Nodes: nodes, WindowSec: window.Seconds()}
	// Count every byte arriving at rank 0 over the TBON — the root link
	// both evaluations pay for.
	var rootIngress []*transport.Counter
	c, err := cluster.New(cluster.Config{
		System: cluster.Lassen,
		Nodes:  nodes,
		Seed:   seed,
		Engine: cluster.EngineEvent,
		WrapLink: func(from, to int32, l transport.Link) transport.Link {
			if to != 0 {
				return l
			}
			ctr := transport.NewCounter(l)
			rootIngress = append(rootIngress, ctr)
			return ctr
		},
	})
	if err != nil {
		return row, err
	}
	defer c.Close()
	mons := make([]*powermon.Module, nodes)
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		m := powermon.New(powermon.Config{
			// Production cadence: 60s samples, a ring holding ten hours,
			// and a 10-minute tier retaining the whole week — the query
			// window outruns the ring, so the planner answers from the
			// tier on every node.
			SampleInterval: time.Minute,
			CollectTimeout: 5 * time.Second,
			BufferSamples:  600,
			Tiers: []powermon.TierSpec{
				{Period: 10 * time.Minute, Buckets: 1100},
				{Period: time.Hour, Buckets: 200},
			},
		})
		mons[rank] = m
		return m
	}); err != nil {
		return row, err
	}
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return query.New(query.Config{
			Source: func(rank int32) query.Source { return mons[rank] },
		})
	}); err != nil {
		return row, err
	}

	// Four waves of three jobs spread across the window, each wave
	// occupying three quarters of the fleet, so the group-by has real
	// per-job structure at every scale.
	const waves, jobsPerWave = 4, 3
	jobNodes := nodes / 4
	if jobNodes < 1 {
		jobNodes = 1
	}
	for w := 0; w < waves; w++ {
		for j := 0; j < jobsPerWave; j++ {
			if _, err := c.Submit(job.Spec{App: "gemm", Nodes: jobNodes, RepFactor: 4}); err != nil {
				return row, err
			}
		}
		c.RunFor(window / waves)
	}
	row.Jobs = waves * jobsPerWave
	end := c.Now().Seconds()
	expr := fmt.Sprintf("avg by (job) (avg_over_time(node_power_watts[%ds]))", int(window.Seconds()))
	cl := query.NewClient(c.Inst.Root()).WithTimeout(5 * time.Minute)
	ingress := func() uint64 {
		var total uint64
		for _, ctr := range rootIngress {
			_, bytes := ctr.Stats()
			total += bytes
		}
		return total
	}

	// Baseline: resolve the plan once, fetch every rank's plan-selected
	// records to the root, evaluate there.
	spec, err := cl.Plan(expr, 0, end)
	if err != nil {
		return row, err
	}
	e, err := query.Parse(expr)
	if err != nil {
		return row, err
	}
	before := ingress()
	start := time.Now()
	replies := cl.FetchAll(spec, int32(nodes))
	ref := query.EvalRecords(e, spec, replies, nodes)
	row.RawWallMs = float64(time.Since(start)) / float64(time.Millisecond)
	row.RawRootBytes = ingress() - before
	if len(replies) != nodes {
		return row, fmt.Errorf("baseline fetched %d of %d ranks", len(replies), nodes)
	}

	// Pushdown: the same plan flows down the reduce tree; partials merge
	// at every level.
	before = ingress()
	start = time.Now()
	res, err := cl.Eval(expr, 0, end)
	if err != nil {
		return row, err
	}
	row.PushWallMs = float64(time.Since(start)) / float64(time.Millisecond)
	row.PushRootBytes = ingress() - before

	if res.Partial || !res.Complete {
		return row, fmt.Errorf("healthy cluster answered partial=%v complete=%v", res.Partial, res.Complete)
	}
	if len(res.Groups) != row.Jobs {
		return row, fmt.Errorf("want one group per job (%d), got %d", row.Jobs, len(res.Groups))
	}
	row.Groups = len(res.Groups)
	row.Source = strings.Join(res.Sources, ",")
	pushed, _ := json.Marshal(res)
	want, _ := json.Marshal(ref)
	row.Identical = string(pushed) == string(want)
	if row.PushRootBytes > 0 {
		row.ByteRatio = float64(row.RawRootBytes) / float64(row.PushRootBytes)
	}
	return row, nil
}

func (r *QueryResult) tabular() ([]string, [][]string) {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.Jobs),
			fmt.Sprintf("%d", row.Groups),
			f0(row.WindowSec / 3600),
			row.Source,
			f1(float64(row.RawRootBytes) / 1024),
			f1(float64(row.PushRootBytes) / 1024),
			f1(row.ByteRatio),
			f2(row.RawWallMs),
			f2(row.PushWallMs),
			fmt.Sprintf("%v", row.Identical),
		})
	}
	return []string{"nodes", "jobs", "groups", "window_h", "source",
		"fetch_root_KiB", "push_root_KiB", "byte_ratio", "fetch_ms", "push_ms", "identical"}, rows
}

// Render prints the comparison.
func (r *QueryResult) Render() string {
	header, rows := r.tabular()
	return "Query: group-by-job power over the whole window, flat record fetch vs tier pushdown\n" +
		table(header, rows) +
		fmt.Sprintf("the fetch ships every plan-selected bucket over the root link (O(nodes x buckets));\n"+
			"the pushdown merges partials at every TBON level (O(fanout x groups)).\n"+
			"largest fleet: %.1fx fewer root bytes (gate %.0fx), results byte-identical.\n",
			r.LastRatio, r.GateRatio)
}

// RenderCSV emits the comparison as CSV.
func (r *QueryResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}

// RenderJSON emits the benchmark in the BENCH_query.json shape CI
// publishes as an artifact.
func (r *QueryResult) RenderJSON() (string, error) {
	out, err := json.MarshalIndent(struct {
		Experiment string     `json:"experiment"`
		GateRatio  float64    `json:"gate_ratio"`
		LastRatio  float64    `json:"last_ratio"`
		Rows       []QueryRow `json:"rows"`
	}{Experiment: "query", GateRatio: r.GateRatio, LastRatio: r.LastRatio, Rows: r.Rows}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
