package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermgr"
	"fluxpower/internal/flux/job"
)

// The Table III/IV workload: an 8-node Lassen allocation running GEMM on
// 6 nodes with doubled repetitions and Quicksilver on 2 nodes with its
// enlarged problem (§IV-C). The paper calls the Quicksilver input "10x
// problem size"; with task-partition overheads its measured runtime was
// 348 s — 27.2x the Table II base run — so the size factor is calibrated
// to the measured runtime.
const (
	scenarioNodes  = 8
	gemmNodes      = 6
	gemmRepFactor  = 2
	qsNodes        = 2
	qsSizeFactor   = 27.2
	clusterBoundW  = 9600
	unconstrainedW = 24400 // 8 x 3050 W
)

func scenarioJobs() (gemm, qs job.Spec) {
	gemm = job.Spec{Name: "gemm-6node", App: "gemm", Nodes: gemmNodes, RepFactor: gemmRepFactor}
	qs = job.Spec{Name: "qs-2node", App: "quicksilver", Nodes: qsNodes, SizeFactor: qsSizeFactor}
	return gemm, qs
}

// Table3Row mirrors one row of Table III: a static IBM node-level cap and
// the cluster power it produced.
type Table3Row struct {
	UseCase        string
	NodeCapW       float64
	DerivedGPUCapW float64
	MaxClusterKW   float64
	AvgClusterKW   float64
	// Per-app energies back the §IV-C observation that 1800 W was the
	// energy-optimal static cap for this job mix.
	GEMMEnergyPerNodeKJ float64
	GEMMSec             float64
}

// Table3Result reproduces Table III.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 sweeps IBM's default node-level power capping (PolicyStatic:
// vendor cap only, firmware-derived GPU caps) over the paper's cap values.
func Table3(opts Options) (*Table3Result, error) {
	opts = opts.withDefaults()
	res := &Table3Result{}
	for _, capW := range []float64{0, 1200, 1800, 1950} {
		row, err := runTable3Case(opts, capW)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runTable3Case(opts Options, capW float64) (Table3Row, error) {
	mcfg := &powermgr.Config{Policy: powermgr.PolicyStatic, StaticNodeCapW: capW}
	useCase := fmt.Sprintf("power-constr. %v W", capW)
	if capW == 0 {
		mcfg = nil // unconstrained: no manager, no caps
		useCase = "unconstrained"
	}
	e, err := newEnv(envConfig{
		system:      cluster.Lassen,
		nodes:       scenarioNodes,
		seed:        opts.Seed,
		withMonitor: true,
		manager:     mcfg,
	})
	if err != nil {
		return Table3Row{}, err
	}
	defer e.close()

	sampler := sampleClusterPower(e.c, 2*time.Second)
	gemmSpec, qsSpec := scenarioJobs()
	gemmID, err := e.c.Submit(gemmSpec)
	if err != nil {
		return Table3Row{}, err
	}
	if _, err := e.c.Submit(qsSpec); err != nil {
		return Table3Row{}, err
	}
	if _, idle := e.c.RunUntilIdle(2 * time.Hour); !idle {
		return Table3Row{}, fmt.Errorf("table3: cap %v W jobs did not drain", capW)
	}
	sampler.stop()
	maxW, avgW := sampler.maxAvg()
	gemmStats, _ := e.c.Stats(gemmID)

	row := Table3Row{
		UseCase:             useCase,
		NodeCapW:            capW,
		DerivedGPUCapW:      e.c.Node(0).DerivedGPUCap(),
		MaxClusterKW:        maxW / 1000,
		AvgClusterKW:        avgW / 1000,
		GEMMEnergyPerNodeKJ: gemmStats.EnergyPerNodeJ / 1000,
		GEMMSec:             gemmStats.ExecSec(),
	}
	if capW == 0 {
		row.NodeCapW = 3050
	}
	return row, nil
}

// Row finds the entry for a node cap (0 = unconstrained/3050).
func (r *Table3Result) Row(nodeCapW float64) (Table3Row, bool) {
	for _, row := range r.Rows {
		if row.NodeCapW == nodeCapW {
			return row, true
		}
	}
	return Table3Row{}, false
}

func (r *Table3Result) tabular() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.UseCase, f0(row.NodeCapW), f0(row.DerivedGPUCapW),
			f2(row.MaxClusterKW), f2(row.AvgClusterKW),
			f0(row.GEMMEnergyPerNodeKJ), f0(row.GEMMSec),
		})
	}
	return []string{"use_case", "node_cap_W", "derived_gpu_cap_W", "max_kW", "avg_kW", "gemm_kJ_per_node", "gemm_s"}, rows
}

// Render prints Table III's layout.
func (r *Table3Result) Render() string {
	header, rows := r.tabular()
	return "Table III: static power allocation, IBM node-level capping (8-node Lassen)\n" +
		table(header, rows)
}

// RenderCSV emits the table as CSV for plotting.
func (r *Table3Result) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}
