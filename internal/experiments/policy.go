package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermgr"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/sched"
)

// PolicyScheme is one scheduling/control combination the -exp policy
// comparison runs: a dispatch policy in the job manager plus a
// controller mode in the power manager, both against the same cluster
// power budget.
type PolicyScheme struct {
	// Name labels the scheme in the output table.
	Name string
	// Sched is the job manager's dispatch policy (sched.New name).
	Sched string
	// Controller is the powermgr closed-loop mode; observe counts cap
	// violations on the same definition retune does, so the violation
	// columns are comparable across schemes.
	Controller string
}

// PolicySchemes are the three schemes the experiment compares:
//
//   - fcfs: the baseline — in-order dispatch, head-of-line blocking on
//     both nodes and predicted power, static proportional caps.
//   - power-aware: predicted-power backfill — small low-power jobs start
//     in the power headroom a blocked big job leaves; caps still static.
//   - closed-loop: power-aware dispatch plus the PI budget controller
//     reclaiming slack from under-cap jobs and granting it to throttled
//     ones every interval.
func PolicySchemes() []PolicyScheme {
	return []PolicyScheme{
		{Name: "fcfs", Sched: sched.PolicyFCFS, Controller: powermgr.ControllerObserve},
		{Name: "power-aware", Sched: sched.PolicyPowerAware, Controller: powermgr.ControllerObserve},
		{Name: "closed-loop", Sched: sched.PolicyPowerAware, Controller: powermgr.ControllerRetune},
	}
}

// PolicyJobMix is the workload every scheme runs: a power-hungry LAMMPS
// pair that cannot run concurrently inside the budget, with long
// low-power Laghos jobs and two small fillers queued behind them. Under
// FCFS the second LAMMPS blocks the queue head on predicted power, so
// everything behind it waits; the power-aware schemes backfill the
// Laghos jobs into the headroom immediately. The order is deterministic
// because the order is the point.
func PolicyJobMix(quick bool) []job.Spec {
	rep, size := 4.0, 45.0
	if quick {
		rep, size = 2, 12
	}
	return []job.Spec{
		{Name: "lammps-0", App: "lammps", Nodes: 8, RepFactor: rep},
		{Name: "lammps-1", App: "lammps", Nodes: 8, RepFactor: rep},
		{Name: "laghos-0", App: "laghos", Nodes: 4, SizeFactor: size},
		{Name: "laghos-1", App: "laghos", Nodes: 4, SizeFactor: size},
		{Name: "quicksilver-0", App: "quicksilver", Nodes: 2, SizeFactor: quickOr(quick, 4, 10)},
		{Name: "gemm-0", App: "gemm", Nodes: 2, RepFactor: 1},
	}
}

func quickOr(quick bool, q, full float64) float64 {
	if quick {
		return q
	}
	return full
}

// PolicyRow is one scheme's outcome.
type PolicyRow struct {
	Scheme           string
	MakespanSec      float64
	ThroughputPerHr  float64 // completed jobs per simulated hour
	AvgQueueWaitSec  float64
	MaxQueueWaitSec  float64
	Rounds           uint64 // controller observation rounds completed
	Violations       uint64 // controller rounds with a job > cap+margin
	Sustained        uint64 // violations lasting >= SustainedRounds rounds
	ReclaimedKW      float64
	GrantedKW        float64
	TotalEnergyKJ    float64 // sum over jobs of per-node energy x nodes
	BudgetTrims      uint64  // dispatcher picks trimmed by the budget gate
	MaxFleetCapKW    float64 // highest sum-of-caps checkpoint seen
	BudgetExceededAt int     // checkpoints where caps exceeded budget (must be 0)
}

// ViolationRate is the row's cap violations per controller round — the
// CI-gated rate for the closed-loop scheme.
func (row PolicyRow) ViolationRate() float64 {
	if row.Rounds == 0 {
		return 0
	}
	return float64(row.Violations) / float64(row.Rounds)
}

// PolicyResult is the FCFS vs power-aware vs closed-loop comparison.
type PolicyResult struct {
	Nodes   int
	BudgetW float64
	Jobs    int
	Rows    []PolicyRow
}

// Row returns the named scheme's row.
func (r *PolicyResult) Row(name string) (PolicyRow, bool) {
	for _, row := range r.Rows {
		if row.Scheme == name {
			return row, true
		}
	}
	return PolicyRow{}, false
}

// policyControllerCfg is the controller tuning the experiment uses: a
// shorter interval and snappier gains than the defaults so grants to a
// throttled job converge within SustainedRounds rounds — the loop must
// clear a violation before it counts as sustained, which is the gated
// acceptance bar. The headroom is deliberately generous: a job throttled
// at its cap draws exactly its cap, so the tracking error the loop can
// see is at most the headroom — a small headroom makes re-grants crawl
// and leaves phased applications throttled at every high-phase entry.
func policyControllerCfg(mode string) powermgr.ControllerConfig {
	return powermgr.ControllerConfig{
		Mode:      mode,
		Interval:  2 * time.Second,
		Kp:        1.0,
		HeadroomW: 150,
		MaxStepW:  400,
	}
}

// Policy runs the same job queue on a 16-node power-constrained Lassen
// allocation under each scheme and reports scheduling and control
// metrics side by side. The budget (18 kW, 1125 W/node when full) is
// chosen so one LAMMPS fits alongside the Laghos jobs but two LAMMPS
// do not, and so a full machine throttles LAMMPS unless the closed loop
// reclaims Laghos slack.
func Policy(opts Options) (*PolicyResult, error) {
	opts = opts.withDefaults()
	const nodes = 16
	const budgetW = 18000
	specs := PolicyJobMix(opts.Quick)
	res := &PolicyResult{Nodes: nodes, BudgetW: budgetW, Jobs: len(specs)}
	for _, scheme := range PolicySchemes() {
		row, err := policyOne(scheme, specs, opts)
		if err != nil {
			return nil, fmt.Errorf("policy: scheme %s: %w", scheme.Name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func policyOne(scheme PolicyScheme, specs []job.Spec, opts Options) (PolicyRow, error) {
	const nodes = 16
	const budgetW = 18000
	row := PolicyRow{Scheme: scheme.Name}
	mcfg := powermgr.Config{
		Policy:     powermgr.PolicyProportional,
		GlobalCapW: budgetW,
		Controller: policyControllerCfg(scheme.Controller),
	}
	e, err := newEnv(envConfig{
		system:       cluster.Lassen,
		nodes:        nodes,
		seed:         opts.Seed,
		sensorNoiseW: 8,
		withMonitor:  true,
		manager:      &mcfg,
		schedPolicy:  scheme.Sched,
		schedBudgetW: budgetW,
	})
	if err != nil {
		return row, err
	}
	defer e.close()

	ids := make([]uint64, 0, len(specs))
	firstSubmit := e.c.Now().Seconds()
	for _, spec := range specs {
		id, err := e.c.Submit(spec)
		if err != nil {
			return row, fmt.Errorf("submit %s: %w", spec.Name, err)
		}
		ids = append(ids, id)
	}

	// Drain in slices, checkpointing the fleet's sum of caps against the
	// budget: no scheme may ever let caps exceed the cluster cap.
	deadline := e.c.Now().Add(4 * time.Hour)
	for {
		e.c.RunFor(10 * time.Second)
		if _, _, allocs, err := e.pm.Status(); err == nil {
			total := 0.0
			for _, a := range allocs {
				total += a.PerNodeW * float64(len(a.Ranks))
			}
			if total/1000 > row.MaxFleetCapKW {
				row.MaxFleetCapKW = total / 1000
			}
			if total > budgetW+1e-6 {
				row.BudgetExceededAt++
			}
		}
		if idle(e.c) {
			break
		}
		if e.c.Now().Seconds() > deadline.Seconds() {
			return row, fmt.Errorf("queue did not drain within 4 simulated hours")
		}
	}

	var lastEnd float64
	for i, id := range ids {
		st, ok := e.c.Stats(id)
		if !ok {
			return row, fmt.Errorf("job %s has no stats", specs[i].Name)
		}
		if st.EndSec > lastEnd {
			lastEnd = st.EndSec
		}
		row.TotalEnergyKJ += st.EnergyPerNodeJ * float64(st.Nodes) / 1000
	}
	row.MakespanSec = lastEnd - firstSubmit
	if row.MakespanSec > 0 {
		row.ThroughputPerHr = float64(len(ids)) / row.MakespanSec * 3600
	}

	ss, err := job.NewClient(e.c.Inst.Root()).Sched()
	if err != nil {
		return row, err
	}
	row.AvgQueueWaitSec = ss.AvgQueueWaitSec
	row.MaxQueueWaitSec = ss.MaxQueueWaitSec
	row.BudgetTrims = ss.BudgetTrims

	cs, err := e.pm.Controller()
	if err != nil {
		return row, err
	}
	row.Rounds = cs.Rounds
	row.Violations = cs.Violations
	row.Sustained = cs.Sustained
	row.ReclaimedKW = cs.ReclaimedWTotal / 1000
	row.GrantedKW = cs.GrantedWTotal / 1000
	return row, nil
}

// idle reports whether no jobs are running or queued.
func idle(c *cluster.Cluster) bool {
	if len(c.RunningJobs()) > 0 {
		return false
	}
	jobs, err := c.JM.List()
	if err != nil {
		return false
	}
	for _, j := range jobs {
		if j.State != job.StateInactive {
			return false
		}
	}
	return true
}

func (r *PolicyResult) tabular() ([]string, [][]string) {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scheme,
			f0(row.MakespanSec),
			f1(row.ThroughputPerHr),
			f0(row.AvgQueueWaitSec),
			fmt.Sprintf("%d", row.Violations),
			fmt.Sprintf("%d", row.Sustained),
			f1(row.ReclaimedKW),
			f1(row.GrantedKW),
			f0(row.TotalEnergyKJ),
			fmt.Sprintf("%d", row.BudgetTrims),
		})
	}
	return []string{
		"scheme", "makespan_s", "jobs_per_hr", "avg_wait_s",
		"violations", "sustained", "reclaimed_kW", "granted_kW",
		"energy_kJ", "budget_trims",
	}, rows
}

// Render prints the comparison.
func (r *PolicyResult) Render() string {
	header, rows := r.tabular()
	out := fmt.Sprintf("Policy: FCFS vs power-aware vs closed-loop (%d jobs, %d-node Lassen, %.0f kW budget)\n",
		r.Jobs, r.Nodes, r.BudgetW/1000)
	out += table(header, rows)
	out += "violations counts controller rounds where a job drew > cap+margin; sustained\n"
	out += "counts violations lasting >= 3 consecutive rounds. budget_trims counts dispatcher\n"
	out += "picks deferred by the predicted-power admission gate. The closed loop must beat\n"
	out += "FCFS on makespan at the same budget with zero sustained violations.\n"
	return out
}

// RenderCSV emits the comparison as CSV for plotting.
func (r *PolicyResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}
