package experiments

import (
	"strings"
	"testing"
)

// TestQueryQuick runs the query-pushdown benchmark at quick scale and
// gates the byte-ratio acceptance bound: Query itself errors when the
// largest fleet ships fewer than 10x fewer root-link bytes than the
// flat fetch, or when any pushdown answer diverges from the reference
// evaluation. CI runs the same quick sweep through the CLI and publishes
// BENCH_query.json; the full 792-node week-long sweep gates at 50x.
func TestQueryQuick(t *testing.T) {
	res, err := Query(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("quick rows = %d, want 3: %+v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if !row.Identical {
			t.Fatalf("pushdown diverged at %d nodes: %+v", row.Nodes, row)
		}
		if row.Groups != row.Jobs {
			t.Fatalf("groups %d != jobs %d at %d nodes", row.Groups, row.Jobs, row.Nodes)
		}
		if !strings.Contains(row.Source, "tier:600") {
			t.Fatalf("window must outrun the ring onto the 10min tier, got source %q", row.Source)
		}
		if row.RawRootBytes == 0 || row.PushRootBytes == 0 {
			t.Fatalf("missing byte measurements: %+v", row)
		}
	}
	if res.LastRatio < res.GateRatio {
		t.Fatalf("largest quick fleet ratio %.1f under gate %.0f", res.LastRatio, res.GateRatio)
	}
	if !strings.Contains(res.Render(), "byte_ratio") {
		t.Fatal("render missing byte_ratio column")
	}
	js, err := res.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "query"`, `"gate_ratio": 10`, `"Nodes": 8`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %q:\n%s", want, js)
		}
	}
}
