package experiments

import (
	"strings"
	"testing"
)

// TestServeQuick runs the gateway load experiment at quick scale and
// pins its contract: every request served (no 5xx), and RPC
// amplification strictly sublinear — the gateway's caching and
// coalescing must keep root-broker RPCs per HTTP request below 0.1
// even with a cold cache per row.
func TestServeQuick(t *testing.T) {
	r, err := Serve(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("quick rows: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Errors5xx != 0 {
			t.Fatalf("%d clients: %d requests failed 5xx", row.Clients, row.Errors5xx)
		}
		if row.Amplification >= 1.0 {
			t.Fatalf("%d clients: amplification %.3f ≥ 1.0", row.Clients, row.Amplification)
		}
		if row.P50Ms < 0 || row.P95Ms < row.P50Ms || row.P99Ms < row.P95Ms {
			t.Fatalf("%d clients: percentile ordering p50=%v p95=%v p99=%v",
				row.Clients, row.P50Ms, row.P95Ms, row.P99Ms)
		}
		if row.Requests != row.Clients*8 {
			t.Fatalf("%d clients: served %d requests", row.Clients, row.Requests)
		}
	}
	// Larger client fleets must not cost proportionally more RPCs: the
	// absolute root RPC count should stay flat as clients scale, so
	// amplification falls with load. The largest quick row (64 clients,
	// 512 requests) already meets the paper-grade ≤ 0.1 bar that the
	// full experiment demonstrates at 512 clients.
	if r.Rows[1].RootRPCs > 4*r.Rows[0].RootRPCs {
		t.Fatalf("root RPCs grew with client count: %d -> %d",
			r.Rows[0].RootRPCs, r.Rows[1].RootRPCs)
	}
	if last := r.Rows[len(r.Rows)-1]; last.Amplification > 0.1 {
		t.Fatalf("%d clients: amplification %.3f > 0.1", last.Clients, last.Amplification)
	}
	out := r.Render()
	for _, want := range []string{"p50_ms", "p95_ms", "p99_ms", "amplification"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
