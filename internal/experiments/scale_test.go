package experiments

import (
	"math"
	"testing"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/flux/transport"
)

func TestScaleReductionCutsRootBytes(t *testing.T) {
	res, err := Scale(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("quick sweep rows: %d", len(res.Rows))
	}
	prevRatio := 0.0
	for _, row := range res.Rows {
		if row.AggRootBytes == 0 || row.RawRootBytes == 0 {
			t.Fatalf("no traffic counted at %d nodes: %+v", row.Nodes, row)
		}
		// The reduction must beat the flat gather at every size...
		if row.ByteRatio <= 2 {
			t.Fatalf("%d nodes: byte ratio %.1f, want > 2", row.Nodes, row.ByteRatio)
		}
		// ...and by a margin that grows with the cluster: the flat gather
		// is O(N·samples) on the root link, the reduction O(aggregate).
		if row.ByteRatio <= prevRatio {
			t.Fatalf("byte ratio shrank with scale: %+v", res.Rows)
		}
		prevRatio = row.ByteRatio
		// The aggregate summarizes exactly the samples the raw path ships.
		if row.AggSamples != row.RawSamples {
			t.Fatalf("%d nodes: aggregate covered %d samples, raw shipped %d",
				row.Nodes, row.AggSamples, row.RawSamples)
		}
		// And it reports the same physics.
		if math.Abs(row.RawAvgW-row.AggAvgW) > 1e-6*row.RawAvgW {
			t.Fatalf("%d nodes: raw avg %.3f W vs aggregate avg %.3f W",
				row.Nodes, row.RawAvgW, row.AggAvgW)
		}
	}
	// Rendering sanity for the CLI registrations.
	if res.Render() == "" || res.RenderCSV() == "" {
		t.Fatal("empty rendering")
	}
}

// BenchmarkReduceVsFlatGather times a whole-cluster job power query on a
// 792-node Lassen-shaped instance (the paper's full machine): the flat
// raw-sample gather vs the in-network reduction, with the bytes crossing
// the root link reported alongside ns/op.
func BenchmarkReduceVsFlatGather(b *testing.B) {
	const nodes = 792
	var rootIngress []*transport.Counter
	c, err := cluster.New(cluster.Config{
		System: cluster.Lassen,
		Nodes:  nodes,
		Seed:   DefaultSeed,
		WrapLink: func(from, to int32, l transport.Link) transport.Link {
			if to != 0 {
				return l
			}
			ctr := transport.NewCounter(l)
			rootIngress = append(rootIngress, ctr)
			return ctr
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return powermon.New(powermon.Config{})
	}); err != nil {
		b.Fatal(err)
	}
	id, err := c.Submit(job.Spec{App: "laghos", Nodes: nodes})
	if err != nil {
		b.Fatal(err)
	}
	if _, idle := c.RunUntilIdle(5 * time.Minute); !idle {
		b.Fatal("job never finished")
	}
	ingress := func() uint64 {
		var total uint64
		for _, ctr := range rootIngress {
			_, bytes := ctr.Stats()
			total += bytes
		}
		return total
	}
	client := powermon.NewClient(c.Inst.Root())

	b.Run("flat-raw", func(b *testing.B) {
		start := ingress()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Query(id); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ingress()-start)/float64(b.N), "rootB/op")
	})
	b.Run("reduce-aggregate", func(b *testing.B) {
		start := ingress()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ja, err := client.QueryAggregate(id)
			if err != nil {
				b.Fatal(err)
			}
			if ja.Partial {
				b.Fatal("healthy cluster answered partially")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ingress()-start)/float64(b.N), "rootB/op")
	})
}
