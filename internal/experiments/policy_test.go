package experiments

import (
	"strings"
	"testing"
)

// TestPolicyExperiment runs the quick policy comparison end-to-end and
// gates the acceptance criteria: the closed loop must beat FCFS on
// makespan at the same power budget, with zero sustained cap violations
// and a per-round violation rate under 10%, and no scheme may ever let
// the fleet's sum of caps exceed the budget.
func TestPolicyExperiment(t *testing.T) {
	res, err := Policy(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3: %+v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if row.MakespanSec <= 0 {
			t.Errorf("%s: makespan %.0f, queue did not run", row.Scheme, row.MakespanSec)
		}
		if row.Rounds == 0 {
			t.Errorf("%s: controller never observed", row.Scheme)
		}
		if row.BudgetExceededAt != 0 {
			t.Errorf("%s: fleet caps exceeded the budget at %d checkpoints (max %.1f kW)",
				row.Scheme, row.BudgetExceededAt, row.MaxFleetCapKW)
		}
	}
	fcfs, ok := res.Row("fcfs")
	if !ok {
		t.Fatal("no fcfs row")
	}
	pa, ok := res.Row("power-aware")
	if !ok {
		t.Fatal("no power-aware row")
	}
	cl, ok := res.Row("closed-loop")
	if !ok {
		t.Fatal("no closed-loop row")
	}

	// FCFS must actually exhibit the head-of-line power block the
	// power-aware policy relieves — otherwise the comparison is vacuous.
	if fcfs.BudgetTrims == 0 {
		t.Error("fcfs never blocked on predicted power; the workload no longer exercises the budget gate")
	}
	if pa.MakespanSec >= fcfs.MakespanSec {
		t.Errorf("power-aware makespan %.0f s did not beat FCFS %.0f s", pa.MakespanSec, fcfs.MakespanSec)
	}

	// The gated acceptance bar: closed-loop beats FCFS on makespan at
	// equal budget, with zero sustained violations.
	if cl.MakespanSec >= fcfs.MakespanSec {
		t.Errorf("closed-loop makespan %.0f s did not beat FCFS %.0f s", cl.MakespanSec, fcfs.MakespanSec)
	}
	if cl.Sustained != 0 {
		t.Errorf("closed-loop had %d sustained cap violations, want 0", cl.Sustained)
	}
	if rate := cl.ViolationRate(); rate > 0.10 {
		t.Errorf("closed-loop violation rate %.3f exceeds the 0.10 gate (%d violations / %d rounds)",
			rate, cl.Violations, cl.Rounds)
	}
	// The loop must have actually moved watts, not won by inaction.
	if cl.ReclaimedKW == 0 || cl.GrantedKW == 0 {
		t.Errorf("closed-loop moved no watts: reclaimed %.1f kW granted %.1f kW",
			cl.ReclaimedKW, cl.GrantedKW)
	}
	// Observe-mode schemes must count the violations the static split
	// cannot prevent, and the closed loop must clear almost all of them.
	if fcfs.Violations == 0 || pa.Violations == 0 {
		t.Error("static schemes reported no cap violations; the workload no longer presses the caps")
	}
	if cl.Violations >= pa.Violations {
		t.Errorf("closed-loop violations %d not below power-aware %d", cl.Violations, pa.Violations)
	}

	if !strings.Contains(res.Render(), "makespan_s") {
		t.Fatal("render missing makespan_s column")
	}
}
