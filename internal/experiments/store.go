package experiments

import (
	"fmt"
	"os"
	"time"

	"fluxpower/internal/core/powermon"
	"fluxpower/internal/hw"
	"fluxpower/internal/simtime"
	"fluxpower/internal/tsdb"
	"fluxpower/internal/variorum"
)

// StoreResult benchmarks the durable per-node telemetry store (WAL +
// compressed blocks) against the paper's raw-CSV representation of the
// same samples: ingest throughput, on-disk footprint, and how long a
// cold restart takes to recover the full history.
type StoreResult struct {
	// Samples ingested (one Lassen node at the paper's 2 s cadence).
	Samples int
	// IngestPerSec is samples appended per wall-clock second, WAL fsyncs
	// included.
	IngestPerSec float64
	// DiskBytes is the store's total footprint after ingest (sealed
	// blocks + synced WAL); BytesPerSample is the same per sample.
	DiskBytes      int64
	SealedBlocks   int
	BytesPerSample float64
	// CSVBytes is the size of the identical samples rendered as the
	// paper's per-job CSV; Ratio = DiskBytes / CSVBytes.
	CSVBytes int64
	Ratio    float64
	// RecoveryMs is the cold-restart cost: Open (block index + tier logs
	// + WAL replay) plus reading every sample back.
	RecoveryMs       float64
	RecoveredSamples int
}

// countWriter counts bytes without buffering the CSV rendering.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// Store ingests a multi-phase single-node power trace into a fresh tsdb
// store, then measures footprint against raw CSV and times a cold
// recovery. The trace alternates realistic job phases (GPU-heavy,
// CPU-heavy, idle) every 20 simulated minutes so the Gorilla codecs see
// both long constant runs and value changes.
func Store(o Options) (*StoreResult, error) {
	o = o.withDefaults()
	samples := 120_000
	if o.Quick {
		samples = 20_000
	}

	node, err := hw.NewNode("store-bench", hw.LassenConfig(), o.Seed)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "fluxpower-store-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Blocks seal every 512 samples (~17 simulated minutes) so the
	// uncompressed JSON WAL tail — at most one block's worth — stays a
	// rounding error next to the sealed history at either scale.
	cfg := tsdb.Config{BlockSamples: 512}
	s, err := tsdb.Open(dir, cfg)
	if err != nil {
		return nil, err
	}
	phases := []hw.Demand{
		{CPUW: []float64{150, 150}, MemW: 80, GPUW: []float64{200, 200, 200, 200}},
		{CPUW: []float64{185, 170}, MemW: 95, GPUW: []float64{290, 285, 295, 280}},
		{CPUW: []float64{90, 95}, MemW: 55, GPUW: []float64{120, 130, 115, 125}},
		{CPUW: []float64{60, 60}, MemW: 40, GPUW: nil}, // idle GPUs
	}
	all := make([]variorum.NodePower, 0, samples)
	start := time.Now()
	for i := 0; i < samples; i++ {
		if i%600 == 0 {
			node.SetDemand(phases[(i/600)%len(phases)])
		}
		p := variorum.GetNodePower(node, simtime.Time(time.Duration(i)*2*time.Second))
		all = append(all, p)
		if err := s.Append(p); err != nil {
			return nil, fmt.Errorf("store: append %d: %w", i, err)
		}
	}
	if err := s.Sync(); err != nil {
		return nil, err
	}
	// One maintenance pass, as the module's timer would run: compaction
	// tiers fold, retention is enforced (a fresh store stays under it).
	if err := s.Maintain(all[len(all)-1].Timestamp); err != nil {
		return nil, err
	}
	ingestSec := time.Since(start).Seconds()

	h := s.Health()
	res := &StoreResult{
		Samples:        samples,
		IngestPerSec:   float64(samples) / ingestSec,
		DiskBytes:      h.BytesOnDisk,
		SealedBlocks:   h.SealedBlocks,
		BytesPerSample: float64(h.BytesOnDisk) / float64(samples),
	}
	if err := s.Close(); err != nil {
		return nil, err
	}

	// Baseline: the identical samples as the paper's per-job CSV.
	var cw countWriter
	if err := powermon.WriteCSV(&cw, powermon.JobPower{
		JobID: 1, App: "store-bench",
		Nodes: []powermon.NodeSamples{{
			Rank: 0, Hostname: node.Name(), Complete: true, Samples: all,
		}},
	}); err != nil {
		return nil, err
	}
	res.CSVBytes = cw.n
	res.Ratio = float64(res.DiskBytes) / float64(res.CSVBytes)

	// Cold recovery: reopen the directory and read everything back.
	rstart := time.Now()
	s2, err := tsdb.Open(dir, cfg)
	if err != nil {
		return nil, fmt.Errorf("store: recovery open: %w", err)
	}
	got, err := s2.All()
	if err != nil {
		return nil, fmt.Errorf("store: recovery read: %w", err)
	}
	res.RecoveryMs = time.Since(rstart).Seconds() * 1000
	res.RecoveredSamples = len(got)
	if err := s2.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

func (r *StoreResult) tabular() ([]string, [][]string) {
	rows := [][]string{{
		fmt.Sprintf("%d", r.Samples),
		f0(r.IngestPerSec),
		fmt.Sprintf("%d", r.DiskBytes),
		fmt.Sprintf("%d", r.SealedBlocks),
		f1(r.BytesPerSample),
		fmt.Sprintf("%d", r.CSVBytes),
		fmt.Sprintf("%.3f", r.Ratio),
		f1(r.RecoveryMs),
		fmt.Sprintf("%d", r.RecoveredSamples),
	}}
	return []string{"samples", "ingest_per_sec", "disk_bytes", "sealed_blocks",
		"bytes_per_sample", "csv_bytes", "ratio", "recovery_ms", "recovered"}, rows
}

// Render prints the benchmark.
func (r *StoreResult) Render() string {
	header, rows := r.tabular()
	return "Store: durable telemetry store (WAL + compressed blocks) vs raw CSV, one Lassen node\n" +
		table(header, rows) +
		"ratio compares on-disk bytes to the same samples as the paper's job CSV;\n" +
		"recovery_ms is a cold restart reading the full history back.\n"
}

// RenderCSV emits the benchmark as CSV.
func (r *StoreResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}
