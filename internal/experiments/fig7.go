package experiments

import (
	"fmt"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermgr"
	"fluxpower/internal/flux/job"
)

// Fig7Result reproduces Figure 7: proportional power capping applied to a
// non-MPI (Charm++) application. GEMM runs on 6 nodes; NQueens enters on
// 2 nodes mid-run, and GEMM's power drops as the manager redistributes.
type Fig7Result struct {
	GEMMTimeline    []TimelinePoint
	NQueensTimeline []TimelinePoint
	// GEMMPowerBeforeW / DuringW are GEMM's average node power before and
	// while NQueens shares the cluster — the figure's visible step.
	GEMMPowerBeforeW float64
	GEMMPowerDuringW float64
	NQueensStartSec  float64
	NQueensEndSec    float64
}

// Fig7 runs the scenario under proportional sharing with the Table IV
// cluster bound.
func Fig7(opts Options) (*Fig7Result, error) {
	opts = opts.withDefaults()
	e, err := newEnv(envConfig{
		system:      cluster.Lassen,
		nodes:       scenarioNodes,
		seed:        opts.Seed,
		withMonitor: true,
		manager:     &powermgr.Config{Policy: powermgr.PolicyProportional, GlobalCapW: clusterBoundW},
	})
	if err != nil {
		return nil, err
	}
	defer e.close()

	gemmSpec, _ := scenarioJobs()
	gemmID, err := e.c.Submit(gemmSpec)
	if err != nil {
		return nil, err
	}
	// Let GEMM run alone for a while, then the Charm++ job enters the
	// system ("GEMM power consumption drops when the NQueens application
	// enters", §IV-F).
	e.c.RunFor(120 * time.Second)
	nqID, err := e.c.Submit(job.Spec{Name: "nqueens", App: "nqueens", Nodes: 2})
	if err != nil {
		return nil, err
	}
	if _, idle := e.c.RunUntilIdle(2 * time.Hour); !idle {
		return nil, fmt.Errorf("fig7: jobs did not drain")
	}

	res := &Fig7Result{}
	gemmStats, _ := e.c.Stats(gemmID)
	nqStats, _ := e.c.Stats(nqID)
	res.NQueensStartSec = nqStats.StartSec
	res.NQueensEndSec = nqStats.EndSec
	jp, err := e.mon.Query(gemmID)
	if err != nil {
		return nil, err
	}
	res.GEMMTimeline = timelineFor(jp, gemmStats.Ranks[0])
	if jpn, err := e.mon.Query(nqID); err == nil {
		res.NQueensTimeline = timelineFor(jpn, nqStats.Ranks[0])
	}
	// Average GEMM node power in the solo window vs the shared window.
	var beforeSum, duringSum float64
	var beforeN, duringN int
	for _, p := range res.GEMMTimeline {
		abs := p.TimeSec + gemmStats.StartSec
		switch {
		case abs < res.NQueensStartSec:
			beforeSum += p.NodeW
			beforeN++
		case abs >= res.NQueensStartSec && (res.NQueensEndSec == 0 || abs <= res.NQueensEndSec):
			duringSum += p.NodeW
			duringN++
		}
	}
	if beforeN > 0 {
		res.GEMMPowerBeforeW = beforeSum / float64(beforeN)
	}
	if duringN > 0 {
		res.GEMMPowerDuringW = duringSum / float64(duringN)
	}
	return res, nil
}

// Render prints the figure's series and the observed power step.
func (r *Fig7Result) Render() string {
	out := "Fig 7: proportional capping with a non-MPI (Charm++) job\n"
	out += fmt.Sprintf("GEMM avg node power: %.0f W alone -> %.0f W while NQueens runs (t=%.0f..%.0f s)\n\n",
		r.GEMMPowerBeforeW, r.GEMMPowerDuringW, r.NQueensStartSec, r.NQueensEndSec)
	out += "GEMM node:\n" + renderTimeline(r.GEMMTimeline)
	out += "\nNQueens node:\n" + renderTimeline(r.NQueensTimeline)
	return out
}
