package experiments

import (
	"math"
	"strings"
	"testing"

	"fluxpower/internal/cluster"
	"fluxpower/internal/stats"
)

// The experiment tests pin the paper's qualitative results: orderings,
// crossovers and rough factors, per the reproduction brief. Absolute
// tolerances are generous where the paper's own numbers scatter.

func TestFig1Timelines(t *testing.T) {
	res, err := Fig1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LAMMPS) < 20 || len(res.Quicksilver) < 20 {
		t.Fatalf("timeline lengths: lammps=%d qs=%d", len(res.LAMMPS), len(res.Quicksilver))
	}
	// LAMMPS: flat and high (compute bound). Coefficient of variation of
	// node power must be small; mean ~1620 W on one node.
	var lam []float64
	for _, p := range res.LAMMPS {
		lam = append(lam, p.NodeW)
	}
	lamMean := stats.MustMean(lam)
	lamSD, _ := stats.StdDev(lam)
	if lamMean < 1400 || lamMean > 1800 {
		t.Fatalf("LAMMPS 1-node mean power %.0f", lamMean)
	}
	if lamSD/lamMean > 0.05 {
		t.Fatalf("LAMMPS power not flat: cv=%.3f", lamSD/lamMean)
	}
	// Quicksilver: pronounced swings between a low (~480 W) and a high
	// (~940 W) level.
	var qs []float64
	for _, p := range res.Quicksilver {
		qs = append(qs, p.NodeW)
	}
	qsMin, _ := stats.Min(qs)
	qsMax, _ := stats.Max(qs)
	if qsMax-qsMin < 300 {
		t.Fatalf("Quicksilver swings too small: %.0f..%.0f", qsMin, qsMax)
	}
	if r := res.Render(); !strings.Contains(r, "Fig 1a") || !strings.Contains(r, "Fig 1b") {
		t.Fatal("render missing sections")
	}
}

func TestFig2ScalingShapes(t *testing.T) {
	res, err := Fig2(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Weak-scaled apps hold per-node power flat across node counts.
	for _, app := range []string{"gemm", "quicksilver", "laghos"} {
		r1, ok1 := res.Row(cluster.Lassen, app, 1)
		r8, ok8 := res.Row(cluster.Lassen, app, 8)
		if !ok1 || !ok8 {
			t.Fatalf("%s rows missing", app)
		}
		if !stats.WithinPercent(r1.NodeW, r8.NodeW, 5) {
			t.Fatalf("%s weak scaling: %0.f W @1 node vs %.0f W @8", app, r1.NodeW, r8.NodeW)
		}
	}
	// LAMMPS (strong) draws less per-node power at higher node counts,
	// and the reduction comes from the GPU level (§IV-A).
	l1, _ := res.Row(cluster.Lassen, "lammps", 1)
	l8, _ := res.Row(cluster.Lassen, "lammps", 8)
	if l8.NodeW >= l1.NodeW {
		t.Fatalf("lammps power did not decline: %.0f → %.0f", l1.NodeW, l8.NodeW)
	}
	if l8.GPUW >= l1.GPUW {
		t.Fatalf("lammps GPU power did not decline: %.0f → %.0f", l1.GPUW, l8.GPUW)
	}
	// Tioga consumes more absolute power than Lassen for the same app and
	// node count (8 GPUs vs 4, §IV-A).
	for _, app := range []string{"lammps", "gemm", "quicksilver"} {
		lassen, _ := res.Row(cluster.Lassen, app, 4)
		tioga, ok := res.Row(cluster.Tioga, app, 4)
		if !ok {
			continue
		}
		if tioga.NodeW <= lassen.NodeW {
			t.Fatalf("%s: tioga %.0f W not above lassen %.0f W", app, tioga.NodeW, lassen.NodeW)
		}
	}
	// Tioga cannot measure memory power.
	tr, _ := res.Row(cluster.Tioga, "lammps", 4)
	if tr.MemW != -1 {
		t.Fatalf("tioga memory power should be -1, got %v", tr.MemW)
	}
}

func TestTable2PaperValues(t *testing.T) {
	res, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(app string, nodes int, lassenSec, tiogaSec, lassenW, tiogaW, tolPct float64) {
		t.Helper()
		row, ok := res.Row(app, nodes)
		if !ok {
			t.Fatalf("%s@%d missing", app, nodes)
		}
		for _, c := range []struct {
			name      string
			got, want float64
		}{
			{"lassen_s", row.LassenSec, lassenSec},
			{"tioga_s", row.TiogaSec, tiogaSec},
			{"lassen_W", row.LassenAvgW, lassenW},
			{"tioga_W", row.TiogaAvgW, tiogaW},
		} {
			if !stats.WithinPercent(c.want, c.got, tolPct) {
				t.Fatalf("%s@%d %s: got %.2f, want %.2f ±%.0f%%", app, nodes, c.name, c.got, c.want, tolPct)
			}
		}
	}
	// Paper Table II values.
	check("lammps", 4, 77.17, 51.00, 1283.74, 1552.40, 6)
	check("lammps", 8, 46.33, 29.67, 1155.08, 1388.99, 8)
	check("laghos", 4, 12.55, 26.71, 472.91, 530.87, 8)
	check("laghos", 8, 12.62, 26.81, 469.59, 532.28, 8)
	check("quicksilver", 4, 12.78, 102.03, 546.99, 915.82, 8)
	check("quicksilver", 8, 13.63, 106.15, 559.64, 924.85, 10)

	// LAMMPS energy improves on Tioga (paper: −21.5%); Laghos energy is
	// higher on Tioga (doubled task count).
	lam, _ := res.Row("lammps", 4)
	if lam.TiogaEnergyKJ >= lam.LassenEnergyKJ {
		t.Fatalf("lammps energy should improve on Tioga: %.1f vs %.1f", lam.TiogaEnergyKJ, lam.LassenEnergyKJ)
	}
	saving := (lam.LassenEnergyKJ - lam.TiogaEnergyKJ) / lam.LassenEnergyKJ * 100
	if saving < 10 || saving > 35 {
		t.Fatalf("lammps Tioga energy saving %.1f%%, paper ~21.5%%", saving)
	}
	lag, _ := res.Row("laghos", 4)
	if lag.TiogaEnergyKJ <= lag.LassenEnergyKJ {
		t.Fatal("laghos energy should increase on Tioga")
	}
	// Quicksilver energy flagged incomparable (HIP anomaly).
	qs, _ := res.Row("quicksilver", 4)
	if qs.EnergyComparable {
		t.Fatal("quicksilver energy should be flagged incomparable")
	}
	if !strings.Contains(res.Render(), "HIP") {
		t.Fatal("render should carry the HIP footnote")
	}
}

func TestFig3OverheadHeadline(t *testing.T) {
	res, err := Fig3(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Headline: low average overhead on both systems. The paper reports
	// 1.2% (Lassen, jitter-dominated) and 0.04% (Tioga); with finite
	// repetitions the estimate is noisy, so bound loosely.
	lassen := res.AverageOverhead(cluster.Lassen)
	tioga := res.AverageOverhead(cluster.Tioga)
	if math.Abs(lassen) > 4 {
		t.Fatalf("lassen average overhead %.2f%%, want small", lassen)
	}
	if math.Abs(tioga) > 0.5 {
		t.Fatalf("tioga average overhead %.2f%%, want ~0.04%%", tioga)
	}
	if !strings.Contains(res.Render(), "average overhead") {
		t.Fatal("render missing summary")
	}
}

func TestFig4VariabilityAtLowNodeCounts(t *testing.T) {
	f3, err := Fig3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Fig4(f3)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rows) == 0 {
		t.Fatal("no box plots")
	}
	// The paper observed >20% spread for Laghos/Quicksilver at 1-2 Lassen
	// nodes even without the monitor.
	if f4.MaxSpreadPercent() < 15 {
		t.Fatalf("max run-to-run spread %.1f%%, want >15%%", f4.MaxSpreadPercent())
	}
	for _, row := range f4.Rows {
		if row.Box.Min > row.Box.Median || row.Box.Median > row.Box.Max {
			t.Fatalf("invalid box: %+v", row)
		}
	}
	_ = f4.Render()
}

func TestTable3IBMConservatism(t *testing.T) {
	res, err := Table3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Derived GPU caps match the paper exactly: 300/100/216/253.
	for _, c := range []struct{ nodeCap, gpuCap float64 }{
		{3050, 300}, {1200, 100}, {1800, 216}, {1950, 253},
	} {
		row, ok := res.Row(c.nodeCap)
		if !ok {
			t.Fatalf("row %v missing", c.nodeCap)
		}
		if math.Abs(row.DerivedGPUCapW-c.gpuCap) > 1 {
			t.Fatalf("node cap %v: derived GPU cap %.1f, want %v", c.nodeCap, row.DerivedGPUCapW, c.gpuCap)
		}
	}
	// Unconstrained: max usage far below the 24.4 kW worst case (paper
	// measured 10.66 kW).
	unc, _ := res.Row(3050)
	if unc.MaxClusterKW > 12 || unc.MaxClusterKW < 9 {
		t.Fatalf("unconstrained max %.2f kW, paper 10.66", unc.MaxClusterKW)
	}
	// IBM's 1200 W cap is extremely conservative: max usage well below
	// the 9.6 kW bound (paper 6.05 kW).
	r1200, _ := res.Row(1200)
	if r1200.MaxClusterKW > 7 {
		t.Fatalf("1200 W cap max %.2f kW, want ≪9.6 (paper 6.05)", r1200.MaxClusterKW)
	}
	// 1950 W brings usage close to the bound (paper 9.5 kW).
	r1950, _ := res.Row(1950)
	if r1950.MaxClusterKW < 9 || r1950.MaxClusterKW > 10.6 {
		t.Fatalf("1950 W cap max %.2f kW, paper 9.5", r1950.MaxClusterKW)
	}
	// Monotone: deeper caps, less power.
	r1800, _ := res.Row(1800)
	if !(r1200.MaxClusterKW < r1800.MaxClusterKW && r1800.MaxClusterKW < r1950.MaxClusterKW && r1950.MaxClusterKW <= unc.MaxClusterKW) {
		t.Fatalf("max power not monotone: %v %v %v %v", r1200.MaxClusterKW, r1800.MaxClusterKW, r1950.MaxClusterKW, unc.MaxClusterKW)
	}
	// The 1800 W sweet spot: GEMM energy lower than at 1950 W (§IV-C).
	if r1800.GEMMEnergyPerNodeKJ >= r1950.GEMMEnergyPerNodeKJ {
		t.Fatalf("1800 W not energy-optimal: %.0f vs %.0f kJ", r1800.GEMMEnergyPerNodeKJ, r1950.GEMMEnergyPerNodeKJ)
	}
	_ = res.Render()
}

func TestTable4PolicyComparison(t *testing.T) {
	res, err := Table4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	unc, _ := res.Row(CaseUnconstrained)
	ibm, _ := res.Row(CaseIBMDefault)
	st, _ := res.Row(CaseStatic1950)
	prop, _ := res.Row(CaseProportional)
	fpp, _ := res.Row(CaseFPP)

	// Paper values: unconstrained GEMM 548 s / 726 kJ; IBM default slows
	// GEMM ~2.1x.
	if !stats.WithinPercent(548, unc.GEMMSec, 4) {
		t.Fatalf("unconstrained GEMM %.0f s, want 548", unc.GEMMSec)
	}
	if !stats.WithinPercent(726, unc.GEMMEnergyKJ, 5) {
		t.Fatalf("unconstrained GEMM %.0f kJ, want 726", unc.GEMMEnergyKJ)
	}
	if !stats.WithinPercent(1145, ibm.GEMMSec, 6) {
		t.Fatalf("IBM-default GEMM %.0f s, want 1145", ibm.GEMMSec)
	}
	// Quicksilver is barely affected by any policy (≤6% spread).
	for _, row := range res.Rows {
		if !stats.WithinPercent(unc.QSSec, row.QSSec, 6) {
			t.Fatalf("%s QS time %.0f s, unconstrained %.0f", row.Case, row.QSSec, unc.QSSec)
		}
	}
	// Energy ordering (paper: IBM 805 > unconstrained 726 > static 652 >
	// prop 612 ≥ FPP 598).
	if !(ibm.GEMMEnergyKJ > unc.GEMMEnergyKJ &&
		unc.GEMMEnergyKJ > st.GEMMEnergyKJ &&
		st.GEMMEnergyKJ > prop.GEMMEnergyKJ) {
		t.Fatalf("GEMM energy ordering broken: ibm=%.0f unc=%.0f static=%.0f prop=%.0f",
			ibm.GEMMEnergyKJ, unc.GEMMEnergyKJ, st.GEMMEnergyKJ, prop.GEMMEnergyKJ)
	}
	// FPP tracks proportional closely (paper's delta is 1.2%, within its
	// own run variance; see EXPERIMENTS.md).
	if !stats.WithinPercent(prop.GEMMEnergyKJ, fpp.GEMMEnergyKJ, 2.5) {
		t.Fatalf("FPP GEMM energy %.0f diverges from prop %.0f", fpp.GEMMEnergyKJ, prop.GEMMEnergyKJ)
	}
	if !stats.WithinPercent(prop.GEMMSec, fpp.GEMMSec, 2.5) {
		t.Fatalf("FPP GEMM time %.0f diverges from prop %.0f", fpp.GEMMSec, prop.GEMMSec)
	}
	// Headline: vs IBM default, the dynamic policies save ~20% energy
	// with a large speedup (paper: 19-20%, 1.58-1.59x).
	saving := (ibm.GEMMEnergyKJ - prop.GEMMEnergyKJ) / ibm.GEMMEnergyKJ * 100
	if saving < 12 || saving > 30 {
		t.Fatalf("prop vs IBM energy saving %.1f%%, paper ~19%%", saving)
	}
	speedup := ibm.GEMMSec / fpp.GEMMSec
	if speedup < 1.4 || speedup > 2.3 {
		t.Fatalf("FPP vs IBM speedup %.2fx, paper ~1.58x", speedup)
	}
	// Max node power: GEMM under the 1950 W policies peaks at the
	// firmware-derived 253 W GPU ceiling (paper 1325-1343 W).
	for _, row := range []Table4Row{st, prop, fpp} {
		if row.GEMMMaxNodeW < 1250 || row.GEMMMaxNodeW > 1450 {
			t.Fatalf("%s GEMM max node power %.0f W, paper ~1330", row.Case, row.GEMMMaxNodeW)
		}
	}
	_ = res.Render()
}

func TestFig5ProportionalReclaim(t *testing.T) {
	res, err := Table4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	gemmTL, qsTL, err := Fig5(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(gemmTL) < 50 || len(qsTL) < 50 {
		t.Fatalf("timeline lengths: %d %d", len(gemmTL), len(qsTL))
	}
	// GEMM receives additional power once Quicksilver exits: average
	// node power after t=360 s must exceed the average before t=340 s.
	prop, _ := res.Row(CaseProportional)
	var before, after []float64
	for _, p := range gemmTL {
		switch {
		case p.TimeSec < prop.QSSec-10:
			before = append(before, p.NodeW)
		case p.TimeSec > prop.QSSec+10:
			after = append(after, p.NodeW)
		}
	}
	if len(before) == 0 || len(after) == 0 {
		t.Fatal("timeline windows empty")
	}
	mBefore := stats.MustMean(before)
	mAfter := stats.MustMean(after)
	if mAfter <= mBefore+50 {
		t.Fatalf("GEMM power did not step up on reclaim: %.0f → %.0f W", mBefore, mAfter)
	}
	_ = RenderTimelines("Fig 5", gemmTL, qsTL)
}

func TestFig6FPPTimeline(t *testing.T) {
	res, err := Table4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	gemmTL, qsTL, err := Fig6(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(gemmTL) < 50 || len(qsTL) < 20 {
		t.Fatalf("timeline lengths: %d %d", len(gemmTL), len(qsTL))
	}
	// Quicksilver under FPP keeps its periodic swings (FPP converges
	// without squeezing it).
	var qsP []float64
	for _, p := range qsTL {
		qsP = append(qsP, p.NodeW)
	}
	qsMin, _ := stats.Min(qsP)
	qsMax, _ := stats.Max(qsP)
	if qsMax-qsMin < 250 {
		t.Fatalf("QS swings flattened under FPP: %.0f..%.0f", qsMin, qsMax)
	}
}

func TestFig7NonMPICapping(t *testing.T) {
	res, err := Fig7(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// GEMM power drops when the Charm++ job enters (§IV-F).
	if res.GEMMPowerDuringW >= res.GEMMPowerBeforeW-30 {
		t.Fatalf("GEMM power did not drop: %.0f → %.0f W", res.GEMMPowerBeforeW, res.GEMMPowerDuringW)
	}
	if res.NQueensStartSec < 100 {
		t.Fatalf("NQueens entered too early: %.0f s", res.NQueensStartSec)
	}
	if len(res.NQueensTimeline) == 0 {
		t.Fatal("NQueens timeline empty")
	}
	// NQueens is CPU-only: its node GPU power stays near idle (4x35 W).
	for _, p := range res.NQueensTimeline {
		if p.TotalGPU > 200 {
			t.Fatalf("NQueens node GPU power %.0f W, should stay near idle", p.TotalGPU)
		}
	}
	if !strings.Contains(res.Render(), "NQueens") {
		t.Fatal("render missing NQueens")
	}
}

func TestQueueMakespanAndEnergy(t *testing.T) {
	res, err := Queue(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// §IV-E: identical makespan under both policies.
	if !stats.WithinPercent(res.Proportional.MakespanSec, res.FPP.MakespanSec, 1) {
		t.Fatalf("makespans diverge: prop %.0f s vs fpp %.0f s",
			res.Proportional.MakespanSec, res.FPP.MakespanSec)
	}
	if res.Proportional.MakespanSec < 300 {
		t.Fatalf("queue too short to be meaningful: %.0f s", res.Proportional.MakespanSec)
	}
	// FPP's energy within a small band of proportional (paper: 1.26%
	// improvement; our deterministic run lands within ±2%).
	improvement := res.EnergyImprovementPercent()
	if math.Abs(improvement) > 2.5 {
		t.Fatalf("FPP energy improvement %.2f%%, want |x| ≤ 2.5", improvement)
	}
	// All ten jobs ran under both policies.
	if len(res.Proportional.JobEnergiesKJ) != 10 || len(res.FPP.JobEnergiesKJ) != 10 {
		t.Fatalf("job counts: %d / %d", len(res.Proportional.JobEnergiesKJ), len(res.FPP.JobEnergiesKJ))
	}
	_ = res.Render()
}

func TestQueueJobMixComposition(t *testing.T) {
	specs := QueueJobMix(7)
	if len(specs) != 10 {
		t.Fatalf("mix size %d", len(specs))
	}
	count := map[string]int{}
	for _, s := range specs {
		count[s.App]++
		if s.Nodes < 1 || s.Nodes > 8 {
			t.Fatalf("node count %d outside 1-8", s.Nodes)
		}
	}
	if count["laghos"] != 3 || count["quicksilver"] != 2 || count["lammps"] != 3 || count["gemm"] != 2 {
		t.Fatalf("mix composition: %v", count)
	}
	// Seeded: same seed, same mix.
	again := QueueJobMix(7)
	for i := range specs {
		if specs[i] != again[i] {
			t.Fatal("mix not reproducible")
		}
	}
}

func TestBoundSweepCrossover(t *testing.T) {
	res, err := BoundSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	// GEMM runtime is monotone non-increasing as the bound rises.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].GEMMSec > res.Rows[i-1].GEMMSec+1 {
			t.Fatalf("GEMM time not monotone: %.0f kW %.0f s -> %.1f kW %.0f s",
				res.Rows[i-1].BoundKW, res.Rows[i-1].GEMMSec, res.Rows[i].BoundKW, res.Rows[i].GEMMSec)
		}
	}
	// The crossover sits near the workload's natural ~11 kW peak (Table
	// III): bounds >= ~11.2 kW cost only the manager's 1950 W backstop
	// (GPUs ceilinged at the firmware-derived 253 W, ~3% on GEMM), 9.6 kW
	// costs a bit more, 4.8 kW costs a lot.
	cross, ok := res.Crossover(4)
	if !ok {
		t.Fatal("no crossover found")
	}
	if cross < 9 || cross > 14 {
		t.Fatalf("crossover at %.1f kW, want ~11", cross)
	}
	tight := res.Rows[0]               // 4.8 kW
	loose := res.Rows[len(res.Rows)-1] // unconstrained
	if tight.GEMMSec < loose.GEMMSec*1.3 {
		t.Fatalf("4.8 kW bound barely hurt GEMM: %.0f vs %.0f s", tight.GEMMSec, loose.GEMMSec)
	}
	// Bound enforcement has two documented leaks, both visible here and
	// both rooted in the paper's own design:
	//  1. Hardware floor: nodes cannot go below base power plus the
	//     100 W NVML minimum per GPU (GEMM nodes ~760 W, QS ~680 W →
	//     ~6.9 kW for this mix; cf. the paper's 1000 W minimum hard
	//     node cap). Bounds below the floor are unenforceable.
	//  2. Idle-node draw: §III-B1 allocates P_G across *job* nodes only,
	//     so after a job finishes the remaining jobs absorb its power
	//     while the freed nodes still draw ~400 W idle each.
	const hwFloorKW = 7.0
	const idleLeakKW = 2 * 0.4 // up to 2 freed nodes at ~400 W idle
	for _, row := range res.Rows {
		if row.BoundKW >= hwFloorKW && row.MaxClusterKW > row.BoundKW+idleLeakKW+0.1 {
			t.Fatalf("bound %.1f kW violated beyond the idle-node allowance: max %.2f kW",
				row.BoundKW, row.MaxClusterKW)
		}
		if row.BoundKW < hwFloorKW && row.MaxClusterKW <= row.BoundKW {
			t.Fatalf("bound %.1f kW below the hardware floor was reported as held (%.2f kW)",
				row.BoundKW, row.MaxClusterKW)
		}
	}
	_ = res.Render()
}

func TestAllTimelinesCharacter(t *testing.T) {
	results, err := AllTimelines(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d timelines", len(results))
	}
	spread := func(r *TimelineResult) float64 {
		// Trim the boundary samples: the first/last can straddle the
		// job's start/end instants and catch the idle node.
		pts := r.Points
		if len(pts) > 4 {
			pts = pts[1 : len(pts)-1]
		}
		var xs []float64
		for _, p := range pts {
			xs = append(xs, p.NodeW)
		}
		mn, _ := stats.Min(xs)
		mx, _ := stats.Max(xs)
		return mx - mn
	}
	byApp := map[string]*TimelineResult{}
	for _, r := range results {
		byApp[r.App] = r
	}
	// §II-D: "GEMM, LAMMPS and NQueens have a relatively flat power
	// timeline without any swings" — GEMM's fast shallow kernel loop is
	// modest at 2 s sampling; LAMMPS and NQueens are truly flat.
	for _, app := range []string{"lammps", "nqueens"} {
		if s := spread(byApp[app]); s > 60 {
			t.Fatalf("%s swing %.0f W, should be flat", app, s)
		}
	}
	// "Only Quicksilver depicts periodic phase behavior" — big swings.
	if s := spread(byApp["quicksilver"]); s < 300 {
		t.Fatalf("quicksilver swing %.0f W, should be pronounced", s)
	}
	// "Laghos has some phase behavior, albeit very minor in terms of the
	// magnitude of swings".
	lagS := spread(byApp["laghos"])
	if lagS < 5 || lagS > 120 {
		t.Fatalf("laghos swing %.0f W, should be minor but visible", lagS)
	}
	// NQueens is CPU-only: GPU power pinned at idle throughout.
	for _, p := range byApp["nqueens"].Points {
		if p.TotalGPU > 150 {
			t.Fatalf("nqueens GPU power %.0f W", p.TotalGPU)
		}
	}
}

// TestFPPTracksProportionalAcrossSeeds backs the EXPERIMENTS.md
// divergence note statistically: over several seeds, FPP's GEMM energy
// stays within a small band of proportional sharing's.
func TestFPPTracksProportionalAcrossSeeds(t *testing.T) {
	var deltas []float64
	for seed := int64(1); seed <= 4; seed++ {
		prop, err := runTable4Case(Options{Seed: seed * 1000}, CaseProportional)
		if err != nil {
			t.Fatal(err)
		}
		fpp, err := runTable4Case(Options{Seed: seed * 1000}, CaseFPP)
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, stats.PercentChange(prop.GEMMEnergyKJ, fpp.GEMMEnergyKJ))
	}
	mean := stats.MustMean(deltas)
	if math.Abs(mean) > 2 {
		t.Fatalf("mean FPP-vs-prop energy delta %.2f%% across seeds %v", mean, deltas)
	}
	for _, d := range deltas {
		if math.Abs(d) > 4 {
			t.Fatalf("seed outlier: deltas %v", deltas)
		}
	}
}

func TestCSVRenderers(t *testing.T) {
	t3, err := Table3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	csv := t3.RenderCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // header + 4 cap rows
		t.Fatalf("table3 CSV lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "use_case,node_cap_W,") {
		t.Fatalf("table3 CSV header: %q", lines[0])
	}
	// Cells containing commas are quoted.
	if !strings.Contains(csv, `"power-constr. 1200 W"`) && !strings.Contains(csv, "power-constr. 1200 W") {
		t.Fatalf("row content missing: %s", csv)
	}
	sweep, err := BoundSweep(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Split(strings.TrimSpace(sweep.RenderCSV()), "\n"); len(got) != 4 {
		t.Fatalf("sweep CSV lines: %d", len(got))
	}
}
