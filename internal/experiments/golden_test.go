package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fluxpower/internal/cluster"
)

var update = flag.Bool("update", false, "rewrite the renderer golden files")

// Renderer goldens pin the exact text and CSV output of the table/figure
// renderers against committed files, using small synthetic fixtures so the
// tests run in microseconds and a diff shows precisely which cell moved.
// Regenerate intentionally with:
//
//	go test ./internal/experiments -run Golden -update
//
// The fixtures exercise the formatting edge cases the experiments produce:
// zero values, sub-watt fractions, energy columns marked not comparable,
// and empty timeline sections.

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: render drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// timeline returns a short synthetic power trace with a ramp and a flat
// tail, enough to exercise alignment across magnitudes.
func timeline(baseW float64) []TimelinePoint {
	return []TimelinePoint{
		{TimeSec: 0, NodeW: baseW, CPUW: 120, MemW: 80, GPU0W: 60, TotalGPU: 240},
		{TimeSec: 5, NodeW: baseW + 350.5, CPUW: 188.2, MemW: 81.4, GPU0W: 272.9, TotalGPU: 1091.6},
		{TimeSec: 10, NodeW: baseW + 349.9, CPUW: 188, MemW: 81.3, GPU0W: 272.5, TotalGPU: 1090},
	}
}

func TestGoldenFig1(t *testing.T) {
	r := &Fig1Result{
		LAMMPS:      timeline(700),
		Quicksilver: timeline(900),
	}
	checkGolden(t, "fig1", r.Render())
}

func TestGoldenFig2(t *testing.T) {
	r := &Fig2Result{Rows: []Fig2Row{
		{System: cluster.Lassen, App: "lammps", Nodes: 1,
			NodeW: 1050.2, CPUW: 376.4, MemW: 162.8, GPUW: 1091.6, ExecSec: 312.5},
		{System: cluster.Lassen, App: "quicksilver", Nodes: 1,
			NodeW: 1210, CPUW: 380.1, MemW: 160, GPUW: 1180.4, ExecSec: 451},
		{System: cluster.Tioga, App: "lammps", Nodes: 1,
			NodeW: 980.7, CPUW: 212.3, MemW: 0, GPUW: 1420.9, ExecSec: 205.8},
		{System: cluster.Tioga, App: "quicksilver", Nodes: 1,
			NodeW: 1102.4, CPUW: 220, MemW: 0, GPUW: 1533.2, ExecSec: 330.1},
	}}
	checkGolden(t, "fig2", r.Render())
}

func TestGoldenFig7(t *testing.T) {
	r := &Fig7Result{
		GEMMTimeline:     timeline(1500),
		NQueensTimeline:  timeline(400),
		GEMMPowerBeforeW: 1850.4,
		GEMMPowerDuringW: 1228.7,
		NQueensStartSec:  20,
		NQueensEndSec:    80,
	}
	checkGolden(t, "fig7", r.Render())
}

func TestGoldenTable2(t *testing.T) {
	r := &Table2Result{Rows: []Table2Row{
		{App: "lammps", Nodes: 1, LassenSec: 312.5, TiogaSec: 205.8,
			LassenAvgW: 1050.2, TiogaAvgW: 980.7,
			LassenEnergyKJ: 328.2, TiogaEnergyKJ: 201.8, EnergyComparable: true},
		{App: "quicksilver", Nodes: 1, LassenSec: 451, TiogaSec: 330.1,
			LassenAvgW: 1210, TiogaAvgW: 1102.4,
			LassenEnergyKJ: 545.7, TiogaEnergyKJ: 363.9, EnergyComparable: false},
	}}
	checkGolden(t, "table2", r.Render())
	checkGolden(t, "table2_csv", r.RenderCSV())
}

func TestGoldenTable3(t *testing.T) {
	r := &Table3Result{Rows: []Table3Row{
		{UseCase: "unconstrained", NodeCapW: 3050, DerivedGPUCapW: 700,
			MaxClusterKW: 48.8, AvgClusterKW: 31.2,
			GEMMEnergyPerNodeKJ: 412.6, GEMMSec: 240.5},
		{UseCase: "cluster-cap-39kW", NodeCapW: 2437, DerivedGPUCapW: 546,
			MaxClusterKW: 39, AvgClusterKW: 29.8,
			GEMMEnergyPerNodeKJ: 398.1, GEMMSec: 261.3},
		{UseCase: "cluster-cap-29kW", NodeCapW: 1812, DerivedGPUCapW: 390,
			MaxClusterKW: 29, AvgClusterKW: 25.4,
			GEMMEnergyPerNodeKJ: 371, GEMMSec: 334.8},
	}}
	checkGolden(t, "table3", r.Render())
	checkGolden(t, "table3_csv", r.RenderCSV())
}

func TestGoldenTable4(t *testing.T) {
	r := &Table4Result{Rows: []Table4Row{
		{Case: CaseUnconstrained, NodeCapW: 3050,
			GEMMMaxNodeW: 1890.2, QSMaxNodeW: 1400.8,
			GEMMSec: 240.5, QSSec: 451.2, GEMMEnergyKJ: 412.6, QSEnergyKJ: 545.7,
			GEMMTimeline: timeline(1500), QSTimeline: timeline(900)},
		{Case: CaseIBMDefault, NodeCapW: 1200,
			GEMMMaxNodeW: 1199.9, QSMaxNodeW: 1180.3,
			GEMMSec: 388.4, QSSec: 470, GEMMEnergyKJ: 430.1, QSEnergyKJ: 548.2},
		{Case: CaseProportional, NodeCapW: 1950,
			GEMMMaxNodeW: 1630.5, QSMaxNodeW: 1320.6,
			GEMMSec: 266.7, QSSec: 455.4, GEMMEnergyKJ: 418.9, QSEnergyKJ: 546.3},
	}}
	checkGolden(t, "table4", r.Render())
	checkGolden(t, "table4_csv", r.RenderCSV())
}

func TestGoldenRenderTimelines(t *testing.T) {
	got := RenderTimelines("Fig 5: proportional sharing timeline",
		timeline(1500), timeline(900))
	checkGolden(t, "fig5_timelines", got)
}

func TestGoldenServe(t *testing.T) {
	r := &ServeResult{Nodes: 8, Rows: []ServeRow{
		{Clients: 64, Requests: 1024, RootRPCs: 52, Amplification: 0.051,
			P50Ms: 0.012, P95Ms: 0.084, P99Ms: 0.312,
			CacheHits: 960, Coalesced: 48, Upstream: 16},
		{Clients: 512, Requests: 8192, RootRPCs: 60, Amplification: 0.007,
			P50Ms: 0.011, P95Ms: 0.102, P99Ms: 0.455,
			CacheHits: 8000, Coalesced: 176, Upstream: 16},
	}}
	checkGolden(t, "serve", r.Render())
	checkGolden(t, "serve_csv", r.RenderCSV())
}

func TestGoldenStore(t *testing.T) {
	r := &StoreResult{
		Samples: 120000, IngestPerSec: 97701, DiskBytes: 286336,
		SealedBlocks: 234, BytesPerSample: 2.4,
		CSVBytes: 11794569, Ratio: 0.024, RecoveryMs: 181.2,
		RecoveredSamples: 120000,
	}
	checkGolden(t, "store", r.Render())
	checkGolden(t, "store_csv", r.RenderCSV())
}

func TestGoldenHeal(t *testing.T) {
	r := &HealResult{SimNodes: 64, LiveNodes: 16, Rows: []HealRow{
		{Mode: "sim", Crashes: 1, HealSec: 0.85, Converged: true},
		{Mode: "sim", Crashes: 2, HealSec: 0.95, Converged: true},
		{Mode: "sim", Crashes: 8, HealSec: 1.8, Converged: true},
		{Mode: "live-tcp", Crashes: 1, HealSec: 0.21, Converged: true},
	}}
	checkGolden(t, "heal", r.Render())
	checkGolden(t, "heal_csv", r.RenderCSV())
}

func TestGoldenPolicy(t *testing.T) {
	r := &PolicyResult{Nodes: 16, BudgetW: 18000, Jobs: 6, Rows: []PolicyRow{
		{Scheme: "fcfs", MakespanSec: 461, ThroughputPerHr: 46.8,
			AvgQueueWaitSec: 108, MaxQueueWaitSec: 261, Rounds: 230,
			Violations: 46, Sustained: 1, TotalEnergyKJ: 3062, BudgetTrims: 5},
		{Scheme: "power-aware", MakespanSec: 426, ThroughputPerHr: 50.7,
			AvgQueueWaitSec: 66, MaxQueueWaitSec: 151, Rounds: 212,
			Violations: 75, Sustained: 2, TotalEnergyKJ: 3065},
		{Scheme: "closed-loop", MakespanSec: 426, ThroughputPerHr: 50.7,
			AvgQueueWaitSec: 66, MaxQueueWaitSec: 151, Rounds: 212,
			Violations: 3, ReclaimedKW: 6.4, GrantedKW: 4.1, TotalEnergyKJ: 3061},
	}}
	checkGolden(t, "policy", r.Render())
	checkGolden(t, "policy_csv", r.RenderCSV())
}

func TestGoldenChaos(t *testing.T) {
	r := &ChaosResult{Nodes: 16, Rows: []ChaosRow{
		{DropProb: 0, Queries: 15, OK: 15},
		{DropProb: 0.05, Queries: 15, OK: 3, Partial: 12, AvgMissing: 1.4},
		{DropProb: 0.4, Queries: 15, Partial: 14, Failed: 1, AvgMissing: 6.8},
	}}
	checkGolden(t, "chaos", r.Render())
	checkGolden(t, "chaos_csv", r.RenderCSV())
}
