package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/powerapi"
	"fluxpower/internal/stats"
)

// ServeRow is one client-count point of the gateway load experiment.
type ServeRow struct {
	Clients  int
	Requests int
	// RootRPCs is how many RPCs the root broker issued while serving;
	// Amplification is RootRPCs / Requests. The gateway's caching and
	// coalescing should hold this far below 1: most HTTP requests must
	// cost the TBON nothing.
	RootRPCs      uint64
	Amplification float64
	// Request latency percentiles in milliseconds (host wall clock).
	P50Ms, P95Ms, P99Ms float64
	// Gateway-side accounting for the same run.
	CacheHits uint64
	Coalesced uint64
	Upstream  uint64
	Errors5xx uint64
}

// ServeResult is the gateway load experiment's output.
type ServeResult struct {
	Nodes int
	Rows  []ServeRow
}

// serveClientMix is the request mix every synthetic client cycles
// through: job listing, both power renderings, and cluster health.
func serveClientMix(jobID uint64) []string {
	id := fmt.Sprintf("%d", jobID)
	return []string{
		"/v1/jobs",
		"/v1/jobs/" + id + "/power",
		"/v1/jobs/" + id + "/power?mode=raw",
		"/v1/cluster/status",
	}
}

// Serve measures the powerapi gateway under concurrent synthetic load:
// an 8-node Lassen instance runs a whole-cluster job to completion, a
// gateway attaches to the root, and K concurrent clients each issue a
// fixed mix of requests. The row reports request latency percentiles
// and RPC amplification — root-broker RPCs issued per HTTP request
// served. Without the gateway every request would be ≥ 1 RPC; response
// caching and request coalescing should hold amplification near zero.
func Serve(o Options) (*ServeResult, error) {
	o = o.withDefaults()
	const nodes = 8
	clientCounts := []int{64, 256, 512}
	perClient := 16
	if o.Quick {
		clientCounts = []int{16, 64}
		perClient = 8
	}

	c, err := cluster.New(cluster.Config{System: cluster.Lassen, Nodes: nodes, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return powermon.New(powermon.Config{})
	}); err != nil {
		return nil, err
	}
	id, err := c.Submit(job.Spec{App: "gemm", Nodes: nodes})
	if err != nil {
		return nil, err
	}
	if _, idle := c.RunUntilIdle(2 * time.Hour); !idle {
		return nil, fmt.Errorf("serve: job never finished")
	}

	res := &ServeResult{Nodes: nodes}
	for _, clients := range clientCounts {
		row, err := serveOne(c, id, clients, perClient)
		if err != nil {
			return nil, fmt.Errorf("serve: %d clients: %w", clients, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func serveOne(c *cluster.Cluster, jobID uint64, clients, perClient int) (ServeRow, error) {
	row := ServeRow{Clients: clients}
	// A fresh gateway per row keeps metrics and cache state comparable
	// across client counts: every row pays the same cold-cache misses.
	gw, err := powerapi.New(powerapi.Config{Broker: c.Inst.Root()})
	if err != nil {
		return row, err
	}
	defer gw.Close()

	paths := serveClientMix(jobID)
	rpcsBefore := c.Inst.Root().Stats().RPCsIssued

	latencies := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addr := fmt.Sprintf("10.%d.%d.%d:4040", i/65536, (i/256)%256, i%256)
			for j := 0; j < perClient; j++ {
				req := httptest.NewRequest(http.MethodGet, paths[(i+j)%len(paths)], nil)
				req.RemoteAddr = addr
				rec := httptest.NewRecorder()
				start := time.Now()
				gw.ServeHTTP(rec, req)
				latencies[i] = append(latencies[i],
					float64(time.Since(start))/float64(time.Millisecond))
				if rec.Code != http.StatusOK {
					errs[i] = fmt.Errorf("client %d: %s -> %d", i, paths[(i+j)%len(paths)], rec.Code)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return row, err
		}
	}

	var all []float64
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Float64s(all)
	row.Requests = len(all)
	row.RootRPCs = c.Inst.Root().Stats().RPCsIssued - rpcsBefore
	row.Amplification = float64(row.RootRPCs) / float64(row.Requests)
	for _, pt := range []struct {
		p   float64
		dst *float64
	}{{50, &row.P50Ms}, {95, &row.P95Ms}, {99, &row.P99Ms}} {
		v, err := stats.Percentile(all, pt.p)
		if err != nil {
			return row, err
		}
		*pt.dst = v
	}
	m := gw.Metrics()
	row.CacheHits = m.CacheHits
	row.Coalesced = m.Coalesced
	row.Upstream = m.UpstreamCalls
	row.Errors5xx = m.Errors5xx
	return row, nil
}

func (r *ServeResult) tabular() ([]string, [][]string) {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Clients),
			fmt.Sprintf("%d", row.Requests),
			fmt.Sprintf("%d", row.RootRPCs),
			fmt.Sprintf("%.3f", row.Amplification),
			fmt.Sprintf("%.3f", row.P50Ms),
			fmt.Sprintf("%.3f", row.P95Ms),
			fmt.Sprintf("%.3f", row.P99Ms),
			fmt.Sprintf("%d", row.CacheHits),
			fmt.Sprintf("%d", row.Coalesced),
			fmt.Sprintf("%d", row.Upstream),
			fmt.Sprintf("%d", row.Errors5xx),
		})
	}
	return []string{"clients", "requests", "root_rpcs", "amplification",
		"p50_ms", "p95_ms", "p99_ms", "cache_hits", "coalesced", "upstream", "5xx"}, rows
}

// Render prints the gateway load table.
func (r *ServeResult) Render() string {
	header, rows := r.tabular()
	return fmt.Sprintf("Serve: powerapi gateway under concurrent load, %d-node Lassen\n", r.Nodes) +
		table(header, rows) +
		"amplification = root-broker RPCs issued / HTTP requests served; caching and\n" +
		"coalescing make it sublinear — most requests never touch the TBON. Latency\n" +
		"percentiles are host wall-clock milliseconds per request.\n"
}

// RenderCSV emits the load table as CSV.
func (r *ServeResult) RenderCSV() string {
	header, rows := r.tabular()
	return csvTable(header, rows)
}
