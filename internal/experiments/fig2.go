package experiments

import (
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/flux/job"
)

// Fig2Row is one bar group in Figure 2: an application at a node count on
// one system, with the monitor's per-component power averages.
type Fig2Row struct {
	System  cluster.System
	App     string
	Nodes   int
	NodeW   float64 // measured node power (conservative estimate on Tioga)
	CPUW    float64
	MemW    float64 // -1 where unsupported
	GPUW    float64
	ExecSec float64
}

// Fig2Result reproduces Figure 2: power for LAMMPS, GEMM, Quicksilver and
// Laghos scaled 1-32 nodes on Lassen and 1-8 on Tioga.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 runs each (system, app, node count) job on a fresh monitored
// cluster and aggregates through the flux-power-monitor pipeline.
func Fig2(opts Options) (*Fig2Result, error) {
	opts = opts.withDefaults()
	lassenCounts := []int{1, 2, 4, 8, 16, 32}
	tiogaCounts := []int{1, 2, 4, 8}
	if opts.Quick {
		lassenCounts = []int{1, 4, 8}
		tiogaCounts = []int{1, 4}
	}
	apps := []string{"lammps", "gemm", "quicksilver", "laghos"}
	res := &Fig2Result{}
	run := func(system cluster.System, app string, nodes int) error {
		e, err := newEnv(envConfig{
			system:      system,
			nodes:       nodes,
			seed:        opts.Seed,
			withMonitor: true,
		})
		if err != nil {
			return err
		}
		defer e.close()
		st, sum, err := e.runJob(job.Spec{App: app, Nodes: nodes}, 60*time.Minute)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Fig2Row{
			System:  system,
			App:     app,
			Nodes:   nodes,
			NodeW:   sum.AvgNodePowerW,
			CPUW:    sum.AvgCPUW,
			MemW:    sum.AvgMemW,
			GPUW:    sum.AvgGPUW,
			ExecSec: st.ExecSec(),
		})
		return nil
	}
	for _, app := range apps {
		for _, n := range lassenCounts {
			if err := run(cluster.Lassen, app, n); err != nil {
				return nil, err
			}
		}
		for _, n := range tiogaCounts {
			if err := run(cluster.Tioga, app, n); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// Row finds a specific measurement.
func (r *Fig2Result) Row(system cluster.System, app string, nodes int) (Fig2Row, bool) {
	for _, row := range r.Rows {
		if row.System == system && row.App == app && row.Nodes == nodes {
			return row, true
		}
	}
	return Fig2Row{}, false
}

// Render prints the figure's data as a table.
func (r *Fig2Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.System), row.App, f0(float64(row.Nodes)),
			f1(row.NodeW), f1(row.CPUW), f1(row.MemW), f1(row.GPUW), f2(row.ExecSec),
		})
	}
	return "Fig 2: average per-node component power vs node count\n" +
		table([]string{"system", "app", "nodes", "node_W", "cpu_W", "mem_W", "gpu_W", "exec_s"}, rows)
}
