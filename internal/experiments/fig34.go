package experiments

import (
	"time"

	"fluxpower/internal/cluster"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/stats"
)

// Fig3Row is one bar of Figure 3: the monitor's measured slowdown for an
// application at a node count, averaged over repetitions.
type Fig3Row struct {
	System          cluster.System
	App             string
	Nodes           int
	SlowdownPercent float64
	WithSec         []float64 // raw runtimes, monitor loaded
	WithoutSec      []float64 // raw runtimes, monitor unloaded
}

// Fig3Result reproduces Figure 3 (overhead) and carries the raw runtimes
// Figure 4's box plots are drawn from.
type Fig3Result struct {
	Rows []Fig3Row
	// Reps is the repetition count per configuration (6 in the paper).
	Reps int
}

// Fig3 measures execution time with and without the monitor module,
// repeated with per-repetition seeds so OS jitter varies run to run.
func Fig3(opts Options) (*Fig3Result, error) {
	opts = opts.withDefaults()
	reps := 6
	lassenCounts := []int{1, 2, 4, 8, 16, 32}
	tiogaCounts := []int{1, 2, 4, 8}
	if opts.Quick {
		reps = 3
		lassenCounts = []int{1, 2, 8}
		tiogaCounts = []int{1, 4}
	}
	res := &Fig3Result{Reps: reps}
	apps := []string{"lammps", "laghos", "quicksilver"}
	measure := func(system cluster.System, app string, nodes int, withMonitor bool, rep int) (float64, error) {
		e, err := newEnv(envConfig{
			system:       system,
			nodes:        nodes,
			seed:         opts.Seed + int64(rep)*104729 + int64(nodes)*31 + int64(len(app)),
			jitter:       true,
			withMonitor:  withMonitor,
			overheadFrac: -1, // per-system default (§IV-B)
		})
		if err != nil {
			return 0, err
		}
		defer e.close()
		st, _, err := e.runJob(job.Spec{App: app, Nodes: nodes}, 60*time.Minute)
		if err != nil {
			return 0, err
		}
		return st.ExecSec(), nil
	}
	for _, system := range []cluster.System{cluster.Lassen, cluster.Tioga} {
		counts := lassenCounts
		if system == cluster.Tioga {
			counts = tiogaCounts
		}
		for _, app := range apps {
			for _, nodes := range counts {
				row := Fig3Row{System: system, App: app, Nodes: nodes}
				for rep := 0; rep < reps; rep++ {
					with, err := measure(system, app, nodes, true, rep)
					if err != nil {
						return nil, err
					}
					without, err := measure(system, app, nodes, false, rep+1000)
					if err != nil {
						return nil, err
					}
					row.WithSec = append(row.WithSec, with)
					row.WithoutSec = append(row.WithoutSec, without)
				}
				mWith := stats.MustMean(row.WithSec)
				mWithout := stats.MustMean(row.WithoutSec)
				row.SlowdownPercent = stats.PercentChange(mWithout, mWith)
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// AverageOverhead returns the mean slowdown across all configurations of
// one system — the paper's headline per-system overhead.
func (r *Fig3Result) AverageOverhead(system cluster.System) float64 {
	var xs []float64
	for _, row := range r.Rows {
		if row.System == system {
			xs = append(xs, row.SlowdownPercent)
		}
	}
	if len(xs) == 0 {
		return 0
	}
	return stats.MustMean(xs)
}

// Render prints Figure 3's bars.
func (r *Fig3Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.System), row.App, f0(float64(row.Nodes)), f2(row.SlowdownPercent),
		})
	}
	out := "Fig 3: % slowdown with flux-power-monitor loaded (" + f0(float64(r.Reps)) + " reps)\n"
	out += table([]string{"system", "app", "nodes", "slowdown_pct"}, rows)
	out += "\naverage overhead: lassen " + f2(r.AverageOverhead(cluster.Lassen)) +
		"%, tioga " + f2(r.AverageOverhead(cluster.Tioga)) + "%\n"
	return out
}

// Fig4Row is one box of Figure 4: the run-to-run spread of raw execution
// times at low node counts.
type Fig4Row struct {
	App         string
	Nodes       int
	WithMonitor bool
	Box         stats.BoxPlot
	SpreadPct   float64
}

// Fig4Result reproduces Figure 4 from Fig 3's raw Lassen runtimes.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 derives the box plots from a Fig3 result (the paper's Figure 4 is
// the same six repetitions, re-plotted raw).
func Fig4(f3 *Fig3Result) (*Fig4Result, error) {
	res := &Fig4Result{}
	for _, row := range f3.Rows {
		if row.System != cluster.Lassen || row.Nodes > 2 {
			continue
		}
		if row.App != "laghos" && row.App != "quicksilver" {
			continue
		}
		for _, withMon := range []bool{false, true} {
			xs := row.WithoutSec
			if withMon {
				xs = row.WithSec
			}
			box, err := stats.NewBoxPlot(xs)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig4Row{
				App:         row.App,
				Nodes:       row.Nodes,
				WithMonitor: withMon,
				Box:         box,
				SpreadPct:   box.SpreadPercent(),
			})
		}
	}
	return res, nil
}

// MaxSpreadPercent returns the largest observed spread — the paper reports
// >20% for Laghos/Quicksilver at low node counts.
func (r *Fig4Result) MaxSpreadPercent() float64 {
	max := 0.0
	for _, row := range r.Rows {
		if row.SpreadPct > max {
			max = row.SpreadPct
		}
	}
	return max
}

// Render prints Figure 4's boxes.
func (r *Fig4Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		mon := "off"
		if row.WithMonitor {
			mon = "on"
		}
		rows = append(rows, []string{
			row.App, f0(float64(row.Nodes)), mon,
			f2(row.Box.Min), f2(row.Box.Q1), f2(row.Box.Median), f2(row.Box.Q3), f2(row.Box.Max),
			f1(row.SpreadPct),
		})
	}
	return "Fig 4: run-to-run variability of raw execution time (Lassen, low node counts)\n" +
		table([]string{"app", "nodes", "monitor", "min_s", "q1_s", "median_s", "q3_s", "max_s", "spread_pct"}, rows)
}
