package experiments

import (
	"strings"
	"testing"
)

// TestEvsimQuick runs the event-core scaling benchmark at quick scale and
// gates the flat-cost acceptance bound: Evsim itself errors when the
// event engine's wall-clock-per-simulated-second grows more than 3x as
// the idle fleet grows at fixed active work. CI runs the full 1k/8k/50k
// sweep through the CLI; this keeps the gate in every plain test run.
func TestEvsimQuick(t *testing.T) {
	res, err := Evsim(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("quick rows = %d, want 2: %+v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if row.ActiveJobs != 64 {
			t.Fatalf("active jobs = %d, want 64", row.ActiveJobs)
		}
		if row.TickWallMs <= 0 || row.EventWallMs <= 0 {
			t.Fatalf("missing wall measurements: %+v", row)
		}
	}
	if res.MaxRatio <= 0 || res.MaxRatio > evsimMaxRatio {
		t.Fatalf("max ratio %.2f outside (0, %.1f]", res.MaxRatio, evsimMaxRatio)
	}
	if !strings.Contains(res.Render(), "event_wall_ms_per_sim_s") {
		t.Fatal("render missing event wall column")
	}
	js, err := res.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "evsim"`, `"gate_ratio": 3`, `"Nodes": 1000`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON rendering missing %q:\n%s", want, js)
		}
	}
}
