package fft

import (
	"math"
	"testing"
)

func benchSignal(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 500 + 200*math.Sin(float64(i)*0.4) + 30*math.Sin(float64(i)*2.1)
	}
	return out
}

func BenchmarkFFTRadix2_1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTBluestein_1000(b *testing.B) {
	x := make([]complex128, 1000)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPeriodDetector compares the two period detectors
// (DESIGN.md decision 3) on the FPP window size: 45 samples of a noisy
// square wave.
func BenchmarkAblationPeriodDetector(b *testing.B) {
	samples := SquareWave(45, 2.0, 12.0, 0.3, 300, 700, 20)
	b.Run("spectral", func(b *testing.B) {
		det := SpectralDetector{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := det.DetectPeriod(samples, 2.0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("autocorrelation", func(b *testing.B) {
		det := AutocorrelationDetector{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := det.DetectPeriod(samples, 2.0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSpectralDetectorLongWindow(b *testing.B) {
	// A day of 2 s samples: the largest plausible detection window.
	samples := benchSignal(43200)
	det := SpectralDetector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.DetectPeriod(samples, 2.0); err != nil {
			b.Fatal(err)
		}
	}
}
