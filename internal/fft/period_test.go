package fft

import (
	"math"
	"testing"
)

func TestSpectralDetectsSquareWavePeriod(t *testing.T) {
	// Quicksilver-like signal: ~20 s period square wave sampled at 2 s
	// (the monitor's default sampling interval) over a 2-minute window.
	samples := SquareWave(60, 2.0, 20.0, 0.5, 300, 700, 0)
	period, ok, err := SpectralDetector{}.DetectPeriod(samples, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("square wave not detected as periodic")
	}
	if math.Abs(period-20) > 2 {
		t.Fatalf("detected period %.2f s, want ~20 s", period)
	}
}

func TestSpectralSurvivesNoise(t *testing.T) {
	// 30 W of sensor noise on a 400 W swing must not break detection.
	samples := SquareWave(90, 2.0, 30.0, 0.5, 300, 700, 30)
	period, ok, err := SpectralDetector{}.DetectPeriod(samples, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("noisy square wave not detected")
	}
	if math.Abs(period-30) > 3 {
		t.Fatalf("noisy period %.2f s, want ~30 s", period)
	}
}

func TestSpectralRejectsFlatSignal(t *testing.T) {
	// GEMM/LAMMPS-style flat power draw: no periodic component.
	flat := make([]float64, 64)
	for i := range flat {
		flat[i] = 1500
	}
	_, ok, err := SpectralDetector{}.DetectPeriod(flat, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("flat signal wrongly detected as periodic")
	}
}

func TestSpectralRejectsWhiteNoise(t *testing.T) {
	noise := SquareWave(128, 2.0, 1e9, 0.5, 500, 500, 40) // pure noise around 500 W
	_, ok, err := SpectralDetector{}.DetectPeriod(noise, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("white noise wrongly detected as periodic")
	}
}

func TestSpectralErrors(t *testing.T) {
	if _, _, err := (SpectralDetector{}).DetectPeriod(nil, 2.0); err != ErrEmpty {
		t.Fatalf("empty err=%v", err)
	}
	if _, _, err := (SpectralDetector{}).DetectPeriod([]float64{1, 2, 3, 4}, 0); err == nil {
		t.Fatal("zero dt should error")
	}
	if _, ok, err := (SpectralDetector{}).DetectPeriod([]float64{1, 2}, 1); err != nil || ok {
		t.Fatalf("too-short input: ok=%v err=%v", ok, err)
	}
}

func TestSpectralPeriodScalesWithSlowdown(t *testing.T) {
	// The FPP feedback loop depends on this: when a power cap slows the
	// application down, its phase period stretches, and the detector must
	// report the longer period.
	base := SquareWave(120, 2.0, 24.0, 0.5, 300, 700, 10)
	slowed := SquareWave(120, 2.0, 36.0, 0.5, 300, 700, 10) // 1.5x slower
	p1, ok1, _ := SpectralDetector{}.DetectPeriod(base, 2.0)
	p2, ok2, _ := SpectralDetector{}.DetectPeriod(slowed, 2.0)
	if !ok1 || !ok2 {
		t.Fatal("detection failed")
	}
	ratio := p2 / p1
	if ratio < 1.3 || ratio > 1.7 {
		t.Fatalf("period ratio %.2f, want ~1.5", ratio)
	}
}

func TestAutocorrelationDetectsPeriod(t *testing.T) {
	samples := SquareWave(90, 2.0, 20.0, 0.5, 300, 700, 10)
	period, ok, err := AutocorrelationDetector{}.DetectPeriod(samples, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("autocorrelation missed square wave")
	}
	if math.Abs(period-20) > 4 {
		t.Fatalf("autocorrelation period %.2f, want ~20", period)
	}
}

func TestAutocorrelationRejectsFlat(t *testing.T) {
	flat := make([]float64, 64)
	for i := range flat {
		flat[i] = 900
	}
	_, ok, err := AutocorrelationDetector{}.DetectPeriod(flat, 2.0)
	if err != nil || ok {
		t.Fatalf("flat: ok=%v err=%v", ok, err)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, _, err := (AutocorrelationDetector{}).DetectPeriod(nil, 1); err != ErrEmpty {
		t.Fatalf("empty err=%v", err)
	}
	if _, _, err := (AutocorrelationDetector{}).DetectPeriod([]float64{1, 2, 3, 4}, -1); err == nil {
		t.Fatal("negative dt should error")
	}
}

func TestDetectorsAgreeOnCleanSignal(t *testing.T) {
	// Ablation sanity (DESIGN.md decision 3): the two detectors should
	// agree within a sample interval on a clean periodic input.
	samples := SquareWave(120, 2.0, 16.0, 0.5, 200, 800, 0)
	p1, ok1, _ := SpectralDetector{}.DetectPeriod(samples, 2.0)
	p2, ok2, _ := AutocorrelationDetector{}.DetectPeriod(samples, 2.0)
	if !ok1 || !ok2 {
		t.Fatalf("detection failed: spectral=%v autocorr=%v", ok1, ok2)
	}
	if math.Abs(p1-p2) > 2.0 {
		t.Fatalf("detectors disagree: spectral=%.2f autocorr=%.2f", p1, p2)
	}
}

func TestSquareWaveShape(t *testing.T) {
	w := SquareWave(10, 1.0, 4.0, 0.5, 0, 100, 0)
	want := []float64{100, 100, 0, 0, 100, 100, 0, 0, 100, 100}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("SquareWave=%v, want %v", w, want)
		}
	}
}
