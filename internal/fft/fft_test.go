package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation tests compare against.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Rect(1, angle)
		}
		out[k] = sum
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTEmptyInput(t *testing.T) {
	if _, err := FFT(nil); err != ErrEmpty {
		t.Fatalf("FFT(nil) err=%v, want ErrEmpty", err)
	}
	if _, err := IFFT(nil); err != ErrEmpty {
		t.Fatalf("IFFT(nil) err=%v", err)
	}
	if _, err := FFTReal(nil); err != ErrEmpty {
		t.Fatalf("FFTReal(nil) err=%v", err)
	}
}

func TestFFTSingleElement(t *testing.T) {
	got, err := FFT([]complex128{3 + 4i})
	if err != nil || len(got) != 1 || got[0] != 3+4i {
		t.Fatalf("FFT singleton=%v err=%v", got, err)
	}
}

func TestFFTMatchesNaiveDFTPow2(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)*0.7), math.Cos(float64(i)*1.3))
		}
		got, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveDFT(x)
		if !complexClose(got, want, 1e-8*float64(n)) {
			t.Fatalf("n=%d radix-2 FFT disagrees with naive DFT", n)
		}
	}
}

func TestFFTMatchesNaiveDFTArbitraryN(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12, 15, 33, 100, 255} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)*0.41), math.Cos(float64(i)*2.2))
		}
		got, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveDFT(x)
		if !complexClose(got, want, 1e-7*float64(n)) {
			t.Fatalf("n=%d bluestein FFT disagrees with naive DFT", n)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 60, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(i%5)-2, float64(i%3))
		}
		fx, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IFFT(fx)
		if err != nil {
			t.Fatal(err)
		}
		if !complexClose(back, x, 1e-8*float64(n)) {
			t.Fatalf("n=%d IFFT(FFT(x)) != x", n)
		}
	}
}

func TestParsevalTheorem(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2 — an FFT correctness invariant.
	n := 128
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	fx, _ := FFT(x)
	var tEnergy, fEnergy float64
	for i := range x {
		tEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		fEnergy += real(fx[i])*real(fx[i]) + imag(fx[i])*imag(fx[i])
	}
	fEnergy /= float64(n)
	if math.Abs(tEnergy-fEnergy) > 1e-6 {
		t.Fatalf("Parseval violated: time=%v freq=%v", tEnergy, fEnergy)
	}
}

func TestFFTRealPureTone(t *testing.T) {
	// A pure cosine at bin k must put (nearly) all energy in bins k, n-k.
	n, k := 64, 5
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	fx, err := FFTReal(x)
	if err != nil {
		t.Fatal(err)
	}
	mags := Magnitudes(fx)
	for bin, m := range mags {
		if bin == k || bin == n-k {
			if math.Abs(m-float64(n)/2) > 1e-8 {
				t.Fatalf("bin %d magnitude %v, want %v", bin, m, float64(n)/2)
			}
		} else if m > 1e-8 {
			t.Fatalf("leakage at bin %d: %v", bin, m)
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5} // non-pow2 triggers Bluestein
	orig := append([]complex128(nil), x...)
	if _, err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT mutated its input")
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d)=%d, want %d", in, got, want)
		}
	}
}

// Property: linearity — FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestQuickFFTLinearity(t *testing.T) {
	f := func(raw []float64, scaleRaw int8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		n := len(raw)
		a := complex(float64(scaleRaw)/16, 0)
		x := make([]complex128, n)
		y := make([]complex128, n)
		combo := make([]complex128, n)
		for i, v := range raw {
			x[i] = complex(v, 0)
			y[i] = complex(float64(i), -v)
			combo[i] = a*x[i] + y[i]
		}
		fc, err1 := FFT(combo)
		fx, err2 := FFT(x)
		fy, err3 := FFT(y)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range fc {
			if cmplx.Abs(fc[i]-(a*fx[i]+fy[i])) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: round-trip IFFT(FFT(x)) == x for arbitrary finite real input.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 100 {
			raw = raw[:100]
		}
		x := make([]complex128, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true
			}
			x[i] = complex(v, 0)
		}
		fx, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(fx)
		if err != nil {
			return false
		}
		return complexClose(back, x, 1e-6*float64(len(x)+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
