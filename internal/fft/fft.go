// Package fft implements the Fast Fourier Transform and the power-signal
// period detection that drives the paper's FFT-based power policy (FPP,
// Algorithm 1).
//
// FPP's FFT-GET-PERIOD procedure buffers node/GPU power samples and asks
// "what is the dominant period of this signal?" every 30 seconds. The
// answer is the location of the strongest non-DC spectral peak. The
// transform itself is built from scratch: an iterative radix-2
// decimation-in-time FFT for power-of-two lengths, extended to arbitrary
// lengths with Bluestein's chirp-z algorithm (so the policy never has to
// truncate its sample window to a power of two).
package fft

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrEmpty is returned when a transform or detector receives no samples.
var ErrEmpty = errors.New("fft: empty input")

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Any length is accepted: powers of two use the radix-2 path,
// other lengths use Bluestein's algorithm.
func FFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	out := append([]complex128(nil), x...)
	if isPow2(len(out)) {
		radix2(out, false)
		return out, nil
	}
	return bluestein(out, false), nil
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	out := append([]complex128(nil), x...)
	if isPow2(len(out)) {
		radix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	n := complex(float64(len(out)), 0)
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// FFTReal transforms a real-valued signal.
func FFTReal(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	if isPow2(len(cx)) {
		radix2(cx, false)
		return cx, nil
	}
	return bluestein(cx, false), nil
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// radix2 performs an in-place iterative Cooley-Tukey FFT on x, whose length
// must be a power of two. inverse selects the conjugate transform (without
// normalization).
func radix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// bluestein computes the DFT of x for arbitrary length via the chirp-z
// transform: re-express the DFT as a convolution, evaluate the convolution
// with zero-padded radix-2 FFTs.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n). Use k^2 mod 2n to keep the
	// angle argument bounded for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	m := nextPow2(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	mInv := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * mInv * chirp[k]
	}
	return out
}

// Magnitudes returns |X[k]| for each bin.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}
