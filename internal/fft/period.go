package fft

import (
	"errors"
	"math"
)

// PeriodDetector estimates the dominant period of a sampled power signal.
// FPP's FFT-GET-PERIOD procedure (Algorithm 1, lines 1-10) is built on
// this: a change in the detected period signals that the current power cap
// is stretching the application's phases.
type PeriodDetector interface {
	// DetectPeriod returns the dominant period, in seconds, of the signal
	// sampled at interval dtSeconds. ok is false when no periodic
	// component stands out (flat signals like GEMM or LAMMPS).
	DetectPeriod(samples []float64, dtSeconds float64) (periodSeconds float64, ok bool, err error)
}

// SpectralDetector finds the strongest non-DC spectral peak. This is the
// detector FPP ships with.
type SpectralDetector struct {
	// MinProminence is the minimum ratio between the peak bin magnitude
	// and the mean non-DC magnitude for the signal to count as periodic.
	// Flat or white-noise signals stay below it. Zero selects the default.
	MinProminence float64
}

// DefaultMinProminence separates Quicksilver-style square waves (ratio
// >> 10) from sensor noise on flat signals (ratio ~2-3).
const DefaultMinProminence = 4.0

var errBadInterval = errors.New("fft: non-positive sampling interval")

// DetectPeriod implements PeriodDetector.
func (d SpectralDetector) DetectPeriod(samples []float64, dtSeconds float64) (float64, bool, error) {
	if len(samples) == 0 {
		return 0, false, ErrEmpty
	}
	if dtSeconds <= 0 {
		return 0, false, errBadInterval
	}
	if len(samples) < 4 {
		return 0, false, nil // too short to resolve any period
	}
	prom := d.MinProminence
	if prom == 0 {
		prom = DefaultMinProminence
	}
	// Remove the mean: node power has a large DC component (idle power)
	// that would otherwise dominate bin 0's leakage.
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	centered := make([]float64, len(samples))
	allEqual := true
	for i, s := range samples {
		centered[i] = s - mean
		if s != samples[0] {
			allEqual = false
		}
	}
	if allEqual {
		return 0, false, nil
	}
	spec, err := FFTReal(centered)
	if err != nil {
		return 0, false, err
	}
	n := len(spec)
	// Only bins 1..n/2 are meaningful for a real signal.
	half := n / 2
	mags := Magnitudes(spec[:half+1])
	peakBin, peakMag, sum := 0, 0.0, 0.0
	for k := 1; k <= half; k++ {
		sum += mags[k]
		if mags[k] > peakMag {
			peakMag = mags[k]
			peakBin = k
		}
	}
	if peakBin == 0 || half < 1 {
		return 0, false, nil
	}
	meanMag := sum / float64(half)
	if meanMag == 0 || peakMag/meanMag < prom {
		return 0, false, nil
	}
	// Parabolic interpolation around the peak refines the frequency
	// estimate beyond bin resolution, which matters because FPP compares
	// successive period estimates against a 2-second convergence
	// threshold.
	kRef := float64(peakBin)
	if peakBin > 1 && peakBin < half {
		alpha, beta, gamma := mags[peakBin-1], mags[peakBin], mags[peakBin+1]
		denom := alpha - 2*beta + gamma
		if denom != 0 {
			delta := 0.5 * (alpha - gamma) / denom
			if delta > -0.5 && delta < 0.5 {
				kRef += delta
			}
		}
	}
	period := float64(n) * dtSeconds / kRef
	return period, true, nil
}

// AutocorrelationDetector estimates the period from the first significant
// peak of the autocorrelation function. It is kept as the ablation
// baseline for DESIGN.md decision 3 (spectral vs autocorrelation).
type AutocorrelationDetector struct {
	// MinCorrelation is the minimum normalized autocorrelation at the lag
	// for it to count as a period (0 selects the default 0.3).
	MinCorrelation float64
}

// DetectPeriod implements PeriodDetector.
func (d AutocorrelationDetector) DetectPeriod(samples []float64, dtSeconds float64) (float64, bool, error) {
	if len(samples) == 0 {
		return 0, false, ErrEmpty
	}
	if dtSeconds <= 0 {
		return 0, false, errBadInterval
	}
	if len(samples) < 4 {
		return 0, false, nil
	}
	minCorr := d.MinCorrelation
	if minCorr == 0 {
		minCorr = 0.3
	}
	n := len(samples)
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(n)
	c0 := 0.0
	centered := make([]float64, n)
	for i, s := range samples {
		centered[i] = s - mean
		c0 += centered[i] * centered[i]
	}
	if c0 == 0 {
		return 0, false, nil
	}
	// Normalized autocorrelation via direct computation (n is bounded by
	// the FPP window: 30 s / sampling interval, small).
	maxLag := n / 2
	best, bestCorr := 0, 0.0
	prev := 1.0
	descending := false
	for lag := 1; lag <= maxLag; lag++ {
		c := 0.0
		for i := 0; i+lag < n; i++ {
			c += centered[i] * centered[i+lag]
		}
		corr := c / c0
		if corr < prev {
			descending = true
		}
		// First local maximum after the initial descent.
		if descending && corr >= minCorr && corr > bestCorr {
			best, bestCorr = lag, corr
		}
		prev = corr
	}
	if best == 0 {
		return 0, false, nil
	}
	return float64(best) * dtSeconds, true, nil
}

// SquareWave generates a square wave with the given period, duty cycle,
// low/high levels and additive deterministic pseudo-noise; used by tests
// and benchmarks to model Quicksilver-style periodic power draws.
func SquareWave(n int, dtSeconds, periodSeconds, duty, low, high, noiseAmp float64) []float64 {
	out := make([]float64, n)
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		t := math.Mod(float64(i)*dtSeconds, periodSeconds) / periodSeconds
		v := low
		if t < duty {
			v = high
		}
		if noiseAmp > 0 {
			seed = seed*6364136223846793005 + 1442695040888963407
			u := float64(seed>>11) / float64(1<<53) // [0,1)
			v += (u*2 - 1) * noiseAmp
		}
		out[i] = v
	}
	return out
}
