package tsdb

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"fluxpower/internal/variorum"
)

// mkSample builds a deterministic Lassen-shaped sample at 2 s cadence.
func mkSample(i int) variorum.NodePower {
	base := 1200 + 300*math.Sin(float64(i)/50)
	return variorum.NodePower{
		Hostname:           "lassen42",
		Timestamp:          10 + float64(i)*2,
		Arch:               "ibm_power9",
		NodeWatts:          base,
		SocketCPUWatts:     []float64{base * 0.3, base * 0.28},
		SocketMemWatts:     []float64{90, 85},
		SocketGPUWatts:     []float64{base * 0.18, base * 0.17},
		GPUWatts:           []float64{150, 152, 148, 151},
		GPUsPerSensorEntry: 1,
	}
}

// mkTiogaSample builds a sample in Tioga's shape: no node sensor, no
// memory channel, per-OAM GPU sensors.
func mkTiogaSample(i int) variorum.NodePower {
	return variorum.NodePower{
		Hostname:           "tioga12",
		Timestamp:          10 + float64(i)*2,
		Arch:               "amd_instinct",
		NodeWatts:          variorum.Unsupported,
		SocketCPUWatts:     []float64{280 + float64(i%7)},
		SocketGPUWatts:     []float64{470},
		GPUWatts:           []float64{118, 117, 119, 116},
		GPUsPerSensorEntry: 2,
	}
}

// sameJSON compares sample slices by their JSON encoding: the WAL stores
// JSON, so nil vs empty omitempty slices are indistinguishable by design
// and DeepEqual would be stricter than the durability contract.
func sameJSON(t *testing.T, got, want []variorum.NodePower) {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatalf("samples differ:\n got %s\nwant %s", g, w)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	for name, mk := range map[string]func(int) variorum.NodePower{
		"lassen": mkSample, "tioga": mkTiogaSample,
	} {
		t.Run(name, func(t *testing.T) {
			var samples []variorum.NodePower
			for i := 0; i < 500; i++ {
				samples = append(samples, mk(i))
			}
			img, err := encodeBlock(samples)
			if err != nil {
				t.Fatal(err)
			}
			h, got, err := decodeBlock(img)
			if err != nil {
				t.Fatal(err)
			}
			if h.count != len(samples) {
				t.Fatalf("count = %d, want %d", h.count, len(samples))
			}
			if h.minTs != samples[0].Timestamp || h.maxTs != samples[len(samples)-1].Timestamp {
				t.Fatalf("time bounds [%v, %v]", h.minTs, h.maxTs)
			}
			sameJSON(t, got, samples)
			// Exact nil-ness must survive, not just JSON equivalence.
			if (got[0].SocketMemWatts == nil) != (samples[0].SocketMemWatts == nil) {
				t.Fatal("SocketMemWatts nil-ness changed")
			}
			if (got[0].GPUWatts == nil) != (samples[0].GPUWatts == nil) {
				t.Fatal("GPUWatts nil-ness changed")
			}
		})
	}
}

func TestBlockRoundTripEdgeShapes(t *testing.T) {
	cases := map[string][]variorum.NodePower{
		"single sample": {mkSample(0)},
		"nil cpu slice": {{
			Hostname: "h", Timestamp: 5, Arch: "a", NodeWatts: 100,
		}},
		"empty non-nil cpu": {{
			Hostname: "h", Timestamp: 5, Arch: "a", NodeWatts: 100,
			SocketCPUWatts: []float64{},
		}},
	}
	for name, samples := range cases {
		t.Run(name, func(t *testing.T) {
			img, err := encodeBlock(samples)
			if err != nil {
				t.Fatal(err)
			}
			_, got, err := decodeBlock(img)
			if err != nil {
				t.Fatal(err)
			}
			sameJSON(t, got, samples)
			if (got[0].SocketCPUWatts == nil) != (samples[0].SocketCPUWatts == nil) {
				t.Fatal("SocketCPUWatts nil-ness changed")
			}
		})
	}
}

func TestBlockRoundTripNonFinite(t *testing.T) {
	// NaN and infinities never reach the WAL (they are not valid JSON),
	// but the block codec must still carry them bit-exactly.
	in := variorum.NodePower{
		Hostname: "h", Timestamp: 5, Arch: "a",
		NodeWatts:      math.NaN(),
		SocketCPUWatts: []float64{math.Inf(1), math.Inf(-1)},
	}
	img, err := encodeBlock([]variorum.NodePower{in})
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := decodeBlock(img)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got[0].NodeWatts) != math.Float64bits(in.NodeWatts) {
		t.Fatal("NaN bits changed")
	}
	for i := range in.SocketCPUWatts {
		if math.Float64bits(got[0].SocketCPUWatts[i]) != math.Float64bits(in.SocketCPUWatts[i]) {
			t.Fatalf("SocketCPUWatts[%d] bits changed", i)
		}
	}
}

func TestBlockEncodeErrors(t *testing.T) {
	if _, err := encodeBlock(nil); err == nil {
		t.Fatal("encodeBlock(nil) succeeded")
	}
	mixed := []variorum.NodePower{mkSample(0), mkTiogaSample(1)}
	if _, err := encodeBlock(mixed); err == nil {
		t.Fatal("encodeBlock with mixed schemas succeeded")
	}
	wide := mkSample(0)
	wide.SocketCPUWatts = make([]float64, 300)
	if _, err := encodeBlock([]variorum.NodePower{wide}); err == nil {
		t.Fatal("encodeBlock with 300 sockets succeeded")
	}
}

func TestBlockDecodeCorruption(t *testing.T) {
	var samples []variorum.NodePower
	for i := 0; i < 64; i++ {
		samples = append(samples, mkSample(i))
	}
	img, err := encodeBlock(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Any single-bit flip must be rejected by the CRC.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		mut := append([]byte(nil), img...)
		mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
		if _, _, err := decodeBlock(mut); err == nil {
			t.Fatalf("decodeBlock accepted corrupted image (trial %d)", trial)
		}
	}
	// Every truncation must be rejected, never panic.
	for cut := 0; cut < len(img); cut++ {
		if _, _, err := decodeBlock(img[:cut]); err == nil {
			t.Fatalf("decodeBlock accepted %d/%d bytes", cut, len(img))
		}
	}
}

func TestBlockCompression(t *testing.T) {
	var samples []variorum.NodePower
	for i := 0; i < 4096; i++ {
		samples = append(samples, mkSample(i))
	}
	img, err := encodeBlock(samples)
	if err != nil {
		t.Fatal(err)
	}
	var raw int
	for _, p := range samples {
		b, _ := json.Marshal(p)
		raw += len(b) + 1
	}
	if ratio := float64(len(img)) / float64(raw); ratio > 0.25 {
		t.Fatalf("block is %.1f%% of raw JSON (%d / %d bytes); want ≤ 25%%",
			100*ratio, len(img), raw)
	}
}
