// Package tsdb is the node agent's durable power-telemetry store: the
// on-disk backing the in-memory powermon archive recovers from after a
// crash, and the long-memory the gateway serves historical queries from
// once the raw ring has evicted.
//
// The write path is a segmented append-only WAL of CRC32-framed JSON
// records with batched fsync: appends accumulate in memory and become
// durable on Sync (driven by SyncEvery and the owner's maintenance
// timer), so a crash loses at most the un-synced tail and a torn final
// write truncates, never corrupts. Every BlockSamples samples the head
// seals into an immutable Gorilla-compressed block file (delta-of-delta
// timestamps, XOR-encoded per-component channels — see block.go), after
// which the covered WAL segments are deleted. Sealed blocks compact in
// the background into the same 1min/10min mean/max/min tier buckets the
// in-memory archive keeps, persisted to append-only tier logs that are
// never garbage-collected; GC then deletes sealed-block prefixes under a
// size/age bound, but only blocks every tier has fully compacted —
// deleted samples always live inside persisted buckets, which recovery
// adopts wholesale, so no bucket is ever double-counted or half-rebuilt.
//
// The store is safe for concurrent use and deliberately simtime-agnostic:
// callers pass sample-time seconds into Maintain/GC, so the same code
// runs under the deterministic simulation and a wall-clock deployment.
package tsdb

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fluxpower/internal/variorum"
)

// Defaults; see Config.
const (
	DefaultBlockSamples = 4096
	DefaultSegmentBytes = 1 << 20
	DefaultSyncEvery    = 64
	DefaultRetainBytes  = 256 << 20
)

// Config tunes a Store. The zero value selects every default.
type Config struct {
	// BlockSamples is how many samples accumulate in the head before it
	// seals into a compressed block (default 4096).
	BlockSamples int
	// SegmentBytes rotates the active WAL segment once it grows past
	// this size (default 1 MiB).
	SegmentBytes int64
	// SyncEvery fsyncs the WAL after this many appended records
	// (default 64); Sync and Maintain force it earlier.
	SyncEvery int
	// RetainBytes bounds sealed-block bytes on disk (default 256 MiB;
	// negative disables the size bound).
	RetainBytes int64
	// RetainSec bounds sealed-block age relative to the now passed to
	// GC/Maintain, in sample-time seconds (0 disables the age bound).
	RetainSec float64
	// TierPeriodsSec are the compaction bucket periods (default 60 and
	// 600, matching powermon.DefaultTiers; an explicit empty non-nil
	// slice disables compaction — and with it, any GC alignment
	// guarantee).
	TierPeriodsSec []float64
}

func (c Config) withDefaults() Config {
	if c.BlockSamples <= 0 {
		c.BlockSamples = DefaultBlockSamples
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = DefaultSyncEvery
	}
	if c.RetainBytes == 0 {
		c.RetainBytes = DefaultRetainBytes
	}
	if c.TierPeriodsSec == nil {
		c.TierPeriodsSec = []float64{60, 600}
	}
	return c
}

// TierRec is one finalized compaction bucket — the durable counterpart
// of powermon's TierSample, with identical fold semantics so a recovered
// archive tier matches the one that was lost.
type TierRec struct {
	StartSec float64           `json:"start_sec"`
	EndSec   float64           `json:"end_sec"`
	Power    variorum.PowerAgg `json:"power"`
	EnergyJ  float64           `json:"energy_j"`
}

// Health is the store's operational snapshot, surfaced through
// power-monitor.stats/status and the gateway's /v1/metrics.
type Health struct {
	Segments        int     `json:"segments"`
	SealedBlocks    int     `json:"sealed_blocks"`
	BytesOnDisk     int64   `json:"bytes_on_disk"`
	HeadSamples     int     `json:"head_samples"`
	AppendedSamples uint64  `json:"appended_samples"`
	DurableSamples  uint64  `json:"durable_samples"`
	UnsyncedSamples uint64  `json:"unsynced_samples"`
	LastFsyncLagSec float64 `json:"last_fsync_lag_sec"`
	Recoveries      int     `json:"recoveries"`
	TornRecords     int     `json:"torn_records,omitempty"`
	DroppedSegments int     `json:"dropped_segments,omitempty"`
	DroppedBlocks   int     `json:"dropped_blocks,omitempty"`
	TierRecords     int     `json:"tier_records"`
	GCLostSec       float64 `json:"gc_lost_sec,omitempty"`
}

// blockMeta is one sealed block's in-memory index entry: the sparse time
// index is the sorted list of these, binary-searched per query.
type blockMeta struct {
	path  string
	first uint64
	count int
	minTs float64
	maxTs float64
	bytes int64
}

// storeMeta is the best-effort meta.json sidecar.
type storeMeta struct {
	Recoveries int     `json:"recoveries"`
	GCLost     bool    `json:"gc_lost,omitempty"`
	GCLostSec  float64 `json:"gc_lost_sec,omitempty"`
}

// Store is a per-node durable time-series store. All methods are safe
// for concurrent use.
type Store struct {
	mu  sync.Mutex
	dir string
	cfg Config

	blocks     []blockMeta
	blockBytes int64
	head       []variorum.NodePower // unsealed tail, mirrored in the WAL
	segments   []segmentInfo        // non-active segments still on disk
	wal        *walWriter

	sealed   uint64 // global index of the first un-sealed sample
	appended uint64 // global index of the next sample
	durable  uint64 // global durability watermark

	lastAppendTs  float64
	lastDurableTs float64

	tierRecs         map[float64][]TierRec
	compactedThrough map[float64]float64 // per period: EndSec of last emitted bucket

	gcLostTs float64 // newest sample timestamp lost to GC; -Inf when none

	recoveries      int
	tornRecords     int
	droppedSegments int
	droppedBlocks   int

	closed bool
}

var errClosed = fmt.Errorf("tsdb: store is closed")

// Open creates or recovers the store in dir. Recovery replays sealed
// blocks, then the WAL (skipping records already covered by blocks,
// truncating a torn tail), then the tier logs — everything fsynced
// before the crash comes back, in order, byte-exactly.
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:              dir,
		cfg:              cfg,
		tierRecs:         make(map[float64][]TierRec),
		compactedThrough: make(map[float64]float64),
		gcLostTs:         math.Inf(-1),
	}
	var meta storeMeta
	if data, err := os.ReadFile(s.metaPath()); err == nil {
		if json.Unmarshal(data, &meta) == nil {
			s.recoveries = meta.Recoveries
			if meta.GCLost {
				s.gcLostTs = meta.GCLostSec
			}
		}
	}
	if err := s.recoverBlocks(); err != nil {
		return nil, err
	}
	if len(s.blocks) > 0 && s.blocks[0].first > 0 && math.IsInf(s.gcLostTs, -1) {
		// GC ran before a lost meta.json: everything before the first
		// retained block is gone; its minTs is the conservative watermark.
		s.gcLostTs = s.blocks[0].minTs
	}
	for _, p := range cfg.TierPeriodsSec {
		s.compactedThrough[p] = math.Inf(-1)
		if err := s.recoverTierLog(p); err != nil {
			return nil, err
		}
	}
	if err := s.recoverWAL(); err != nil {
		return nil, err
	}
	s.durable = s.appended
	if len(s.head) > 0 {
		s.lastAppendTs = s.head[len(s.head)-1].Timestamp
	} else if len(s.blocks) > 0 {
		s.lastAppendTs = s.blocks[len(s.blocks)-1].maxTs
	}
	s.lastDurableTs = s.lastAppendTs
	hadState := len(s.blocks) > 0 || len(s.segments) > 0 || len(s.head) > 0
	for _, recs := range s.tierRecs {
		hadState = hadState || len(recs) > 0
	}
	if hadState {
		s.recoveries++
	}
	wal, err := openSegment(dir, s.appended)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	s.writeMeta()
	return s, nil
}

func (s *Store) metaPath() string { return filepath.Join(s.dir, "meta.json") }

// writeMeta persists the meta sidecar best-effort: losing it degrades
// the GC watermark to a conservative estimate, never correctness.
func (s *Store) writeMeta() {
	meta := storeMeta{Recoveries: s.recoveries}
	if !math.IsInf(s.gcLostTs, -1) {
		meta.GCLost = true
		meta.GCLostSec = s.gcLostTs
	}
	if data, err := json.Marshal(meta); err == nil {
		_ = os.WriteFile(s.metaPath(), data, 0o644)
	}
}

func blockName(first uint64) string { return fmt.Sprintf("blk-%016x.blk", first) }

func parseBlockName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "blk-") || !strings.HasSuffix(name, ".blk") {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "blk-"), ".blk")
	if len(hexPart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// recoverBlocks loads the sealed-block index. A block that fails its CRC
// (torn seal) is deleted — its samples are still in the WAL — and so is
// anything after a gap in the index sequence.
func (s *Store) recoverBlocks() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	type cand struct {
		path  string
		first uint64
	}
	var cands []cand
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseBlockName(e.Name()); ok {
			cands = append(cands, cand{filepath.Join(s.dir, e.Name()), first})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].first < cands[j].first })
	contiguous := true
	for _, c := range cands {
		if !contiguous {
			s.droppedBlocks++
			_ = os.Remove(c.path)
			continue
		}
		data, err := os.ReadFile(c.path)
		if err != nil {
			return err
		}
		h, _, derr := decodeBlockHeader(data)
		if derr != nil || (len(s.blocks) > 0 && c.first != s.sealed) {
			contiguous = false
			s.droppedBlocks++
			_ = os.Remove(c.path)
			continue
		}
		s.blocks = append(s.blocks, blockMeta{
			path: c.path, first: c.first, count: h.count,
			minTs: h.minTs, maxTs: h.maxTs, bytes: int64(len(data)),
		})
		s.blockBytes += int64(len(data))
		s.sealed = c.first + uint64(h.count)
	}
	s.appended = s.sealed
	return nil
}

// recoverWAL replays segments past the sealed watermark into the head.
// A torn tail is truncated on disk; a gap (which only a torn or lost
// intermediate segment can create) drops everything after it.
func (s *Store) recoverWAL() error {
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	expected := s.sealed
	broken := false
	adopted := false
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		payloads, clean, torn := splitFrames(data)
		if torn {
			s.tornRecords++
			_ = os.Truncate(seg.path, int64(clean))
		}
		seg.count = len(payloads)
		seg.bytes = int64(clean)
		if seg.first+uint64(seg.count) <= s.sealed {
			// Fully covered by sealed blocks: leftover from a crash between
			// block fsync and segment deletion.
			_ = os.Remove(seg.path)
			continue
		}
		if broken {
			s.droppedSegments++
			_ = os.Remove(seg.path)
			continue
		}
		kept := false
		for i, payload := range payloads {
			idx := seg.first + uint64(i)
			if idx < s.sealed {
				continue
			}
			if idx != expected {
				if len(s.head) == 0 && i == 0 && idx > expected {
					// The gap precedes everything replayable — a sealed block
					// was dropped (bit rot) and its covering segments are long
					// deleted. Adopt the segment as the new base and record
					// the loss below, rather than stranding the live tail.
					expected = idx
					adopted = true
				} else {
					broken = true
					break
				}
			}
			var p variorum.NodePower
			if err := json.Unmarshal(payload, &p); err != nil {
				s.tornRecords++
				broken = true
				break
			}
			s.head = append(s.head, p)
			expected++
			kept = true
		}
		if kept || !broken {
			s.segments = append(s.segments, seg)
		} else {
			s.droppedSegments++
			_ = os.Remove(seg.path)
		}
	}
	s.appended = expected
	s.sealed = expected - uint64(len(s.head))
	if adopted && len(s.head) > 0 {
		// Samples older than the adopted base are gone; the first survivor's
		// timestamp is the conservative loss watermark (Covers is strict, so
		// it marks everything before-or-at the survivor as suspect).
		if ts := s.head[0].Timestamp; ts > s.gcLostTs {
			s.gcLostTs = ts
		}
	}
	return nil
}

func (s *Store) tierLogPath(period float64) string {
	return filepath.Join(s.dir, "tier-"+strconv.FormatFloat(period, 'g', -1, 64)+".log")
}

// recoverTierLog loads one tier's persisted buckets, truncating a torn
// tail and rewriting the log if a framed payload fails to decode.
func (s *Store) recoverTierLog(period float64) error {
	path := s.tierLogPath(period)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	payloads, clean, torn := splitFrames(data)
	if torn {
		s.tornRecords++
		_ = os.Truncate(path, int64(clean))
	}
	var recs []TierRec
	rewrite := false
	for _, payload := range payloads {
		var r TierRec
		if err := json.Unmarshal(payload, &r); err != nil {
			rewrite = true
			break
		}
		recs = append(recs, r)
	}
	if rewrite {
		var buf []byte
		for _, r := range recs {
			payload, err := json.Marshal(r)
			if err != nil {
				return err
			}
			buf = appendFrame(buf, payload)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
	}
	s.tierRecs[period] = recs
	for _, r := range recs {
		if r.EndSec > s.compactedThrough[period] {
			s.compactedThrough[period] = r.EndSec
		}
	}
	return nil
}

// Append adds one sample. The sample lands in the in-memory head and the
// WAL's pending buffer; durability follows at the next sync (SyncEvery,
// Sync, Maintain, or a seal). Samples must arrive in non-decreasing
// timestamp order for queries and compaction to be meaningful.
func (s *Store) Append(p variorum.NodePower) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if len(s.head) > 0 && schemaOf(p) != schemaOf(s.head[0]) {
		// Shape change (reconfigured node): seal the current run early so
		// every block stays single-schema.
		if err := s.seal(); err != nil {
			return err
		}
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return err
	}
	s.wal.append(payload)
	s.head = append(s.head, p)
	s.appended++
	s.lastAppendTs = p.Timestamp
	if len(s.head) >= s.cfg.BlockSamples {
		if err := s.seal(); err != nil {
			return err
		}
	}
	if s.wal.size() >= s.cfg.SegmentBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	if s.wal.pendingRecs >= s.cfg.SyncEvery {
		return s.syncLocked()
	}
	return nil
}

// rotate syncs and retires the active segment, opening a fresh one.
func (s *Store) rotate() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	old := segmentInfo{path: s.wal.path, first: s.wal.firstIndex,
		count: s.wal.count, bytes: s.wal.syncedBytes}
	if err := s.wal.f.Close(); err != nil {
		return err
	}
	s.segments = append(s.segments, old)
	wal, err := openSegment(s.dir, s.appended)
	if err != nil {
		return err
	}
	s.wal = wal
	return nil
}

// seal compresses the head into an immutable fsynced block, then deletes
// the WAL segments it covers (including the active one — its records are
// all in the block, so pending bytes are simply dropped) and starts a
// fresh segment. Crash-ordering: the block is durable before any segment
// is unlinked, so every sample exists on disk at every instant.
func (s *Store) seal() error {
	if len(s.head) == 0 {
		return nil
	}
	img, err := encodeBlock(s.head)
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, blockName(s.sealed))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(img); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	minTs, maxTs := s.head[0].Timestamp, s.head[0].Timestamp
	for _, p := range s.head[1:] {
		minTs = math.Min(minTs, p.Timestamp)
		maxTs = math.Max(maxTs, p.Timestamp)
	}
	s.blocks = append(s.blocks, blockMeta{
		path: path, first: s.sealed, count: len(s.head),
		minTs: minTs, maxTs: maxTs, bytes: int64(len(img)),
	})
	s.blockBytes += int64(len(img))
	s.sealed += uint64(len(s.head))
	s.head = nil
	if s.durable < s.sealed {
		s.durable = s.sealed
	}
	if s.durable == s.appended {
		s.lastDurableTs = s.lastAppendTs
	}

	// Every WAL record is now < sealed: drop them all.
	if err := s.wal.drop(); err != nil {
		return err
	}
	_ = os.Remove(s.wal.path)
	for _, seg := range s.segments {
		_ = os.Remove(seg.path)
	}
	s.segments = nil
	wal, err := openSegment(s.dir, s.appended)
	if err != nil {
		return err
	}
	s.wal = wal
	return nil
}

// Sync forces the WAL's pending records to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if _, err := s.wal.sync(); err != nil {
		return err
	}
	s.durable = s.appended
	s.lastDurableTs = s.lastAppendTs
	return nil
}

// Maintain is the owner's periodic housekeeping: sync, compact sealed
// blocks into tier buckets, then GC old blocks. nowSec is the caller's
// notion of sample-time now, used only by the age bound.
func (s *Store) Maintain(nowSec float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.compactLocked(); err != nil {
		return err
	}
	return s.gcLocked(nowSec)
}

// SelectRange returns every stored sample with timestamp in [min, max],
// oldest first: sealed blocks (via the sparse index), then the head —
// which still includes un-synced appends, so a store-backed read is
// always a superset of what a crash would preserve.
func (s *Store) SelectRange(min, max float64) ([]variorum.NodePower, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	var out []variorum.NodePower
	// The block index is time-ordered: binary-search the first block that
	// can overlap, scan until one starts past the window.
	i := sort.Search(len(s.blocks), func(i int) bool { return s.blocks[i].maxTs >= min })
	for ; i < len(s.blocks); i++ {
		b := s.blocks[i]
		if b.minTs > max {
			break
		}
		data, err := os.ReadFile(b.path)
		if err != nil {
			return nil, err
		}
		_, samples, err := decodeBlock(data)
		if err != nil {
			return nil, fmt.Errorf("tsdb: block %s: %w", filepath.Base(b.path), err)
		}
		for _, p := range samples {
			if p.Timestamp >= min && p.Timestamp <= max {
				out = append(out, p)
			}
		}
	}
	for _, p := range s.head {
		if p.Timestamp >= min && p.Timestamp <= max {
			out = append(out, p)
		}
	}
	return out, nil
}

// All returns every stored sample, oldest first.
func (s *Store) All() ([]variorum.NodePower, error) {
	return s.SelectRange(math.Inf(-1), math.Inf(1))
}

// TierRecords returns the persisted compaction buckets for one period,
// oldest first.
func (s *Store) TierRecords(periodSec float64) []TierRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TierRec, len(s.tierRecs[periodSec]))
	copy(out, s.tierRecs[periodSec])
	return out
}

// TierPeriods returns the configured compaction periods, finest first —
// the durable resolutions a query planner can choose from.
func (s *Store) TierPeriods() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]float64(nil), s.cfg.TierPeriodsSec...)
	sort.Float64s(out)
	return out
}

// SelectTier returns the persisted compaction buckets of one period that
// intersect the window [start, end], oldest first: every bucket with
// EndSec > start and StartSec <= end. Buckets are retained forever (GC
// deletes raw blocks, never tier logs), so this is the read path for
// windows that have aged out of both the raw ring and the raw blocks.
// The records are sorted and non-overlapping, so the window is two
// binary searches plus a copy, not a scan.
func (s *Store) SelectTier(periodSec, start, end float64) []TierRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.tierRecs[periodSec]
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].EndSec > start })
	hi := sort.Search(len(recs), func(i int) bool { return recs[i].StartSec > end })
	if hi < lo {
		hi = lo
	}
	out := make([]TierRec, hi-lo)
	copy(out, recs[lo:hi])
	return out
}

// TierCoverage reports how far back one period's persisted buckets
// reach: the StartSec of the oldest bucket and the EndSec of the newest.
// ok is false when the period has no buckets yet (or is not configured).
func (s *Store) TierCoverage(periodSec float64) (firstStartSec, lastEndSec float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.tierRecs[periodSec]
	if len(recs) == 0 {
		return 0, 0, false
	}
	return recs[0].StartSec, recs[len(recs)-1].EndSec, true
}

// Covers reports whether the store still holds everything at or after
// start — false only once GC has deleted samples newer than or at start.
func (s *Store) Covers(start float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return start > s.gcLostTs
}

// LostBeforeSec returns the newest sample timestamp GC has deleted
// (-Inf when nothing was lost) — the watermark a recovering archive
// adopts.
func (s *Store) LostBeforeSec() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLostTs
}

// Health returns an operational snapshot.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		SealedBlocks:    len(s.blocks),
		HeadSamples:     len(s.head),
		AppendedSamples: s.appended,
		DurableSamples:  s.durable,
		UnsyncedSamples: s.appended - s.durable,
		LastFsyncLagSec: s.lastAppendTs - s.lastDurableTs,
		Recoveries:      s.recoveries,
		TornRecords:     s.tornRecords,
		DroppedSegments: s.droppedSegments,
		DroppedBlocks:   s.droppedBlocks,
	}
	h.BytesOnDisk = s.blockBytes
	for _, seg := range s.segments {
		h.BytesOnDisk += seg.bytes
		h.Segments++
	}
	if s.wal != nil {
		h.BytesOnDisk += s.wal.syncedBytes
		h.Segments++
	}
	for p, recs := range s.tierRecs {
		h.TierRecords += len(recs)
		_ = p
	}
	if !math.IsInf(s.gcLostTs, -1) {
		h.GCLostSec = s.gcLostTs
	}
	return h
}

// Crash models an unclean node stop for tests and chaos scenarios: the
// WAL's pending buffer is dropped without flushing and every file is
// closed. The store is unusable afterwards; reopen with Open to recover
// exactly what a real crash would have left.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.wal.crash()
}

// Close syncs and closes the store. Closing an already-closed (or
// crashed) store is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.writeMeta()
	return s.wal.close()
}
