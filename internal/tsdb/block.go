package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"fluxpower/internal/variorum"
)

// Block file layout (little-endian), one immutable compressed run of
// samples sharing a channel schema:
//
//	u32  magic "FPB1"
//	u8   version (1)
//	u32  count                         — samples in the block
//	f64  minTs, f64 maxTs              — the sparse index entry
//	u16  len + bytes                   — hostname
//	u16  len + bytes                   — arch
//	u8   flags                         — bit0 memNil, bit1 gpuSockNil, bit2 gpuDevNil
//	u8×5 nCPU, nMem, nGPUSock, nGPUDev, gpusPerSensorEntry
//	(1 + 1 + nCPU + nMem + nGPUSock + nGPUDev) × { u32 len + bytes }
//	     — timestamp stream, node-watts stream, then one XOR stream per
//	       scalar channel in struct order
//	u32  CRC32 (IEEE) over everything above
//
// Decoding verifies the trailing CRC over the whole buffer before
// trusting any length field, then walks the header through a
// bounds-checked cursor; a block that fails any step returns an error and
// never panics or allocates proportional to hostile counts.

const (
	blockMagic   = 0x46504231 // "FPB1"
	blockVersion = 1
	// maxBlockBytes caps how large a block file decode will even look at.
	maxBlockBytes = 64 << 20
	// maxBlockString caps hostname/arch lengths.
	maxBlockString = 4096
)

// blockSchema is the per-channel shape shared by every sample in one
// block. A sample whose shape differs seals the current head early.
type blockSchema struct {
	hostname string
	arch     string
	nCPU     int
	nMem     int
	nGPUSock int
	nGPUDev  int
	gpusPer  int
	memNil   bool
	gpuSNil  bool
	gpuDNil  bool
	cpuNil   bool
}

func schemaOf(p variorum.NodePower) blockSchema {
	return blockSchema{
		hostname: p.Hostname,
		arch:     p.Arch,
		nCPU:     len(p.SocketCPUWatts),
		nMem:     len(p.SocketMemWatts),
		nGPUSock: len(p.SocketGPUWatts),
		nGPUDev:  len(p.GPUWatts),
		gpusPer:  p.GPUsPerSensorEntry,
		memNil:   p.SocketMemWatts == nil,
		gpuSNil:  p.SocketGPUWatts == nil,
		gpuDNil:  p.GPUWatts == nil,
		cpuNil:   p.SocketCPUWatts == nil,
	}
}

// channels returns the number of scalar value streams (excluding the
// timestamp stream).
func (s blockSchema) channels() int {
	return 1 + s.nCPU + s.nMem + s.nGPUSock + s.nGPUDev // 1 = NodeWatts
}

// encodeBlock seals samples (all sharing the first sample's schema) into
// a block file image.
func encodeBlock(samples []variorum.NodePower) ([]byte, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("tsdb: empty block")
	}
	s := schemaOf(samples[0])
	if s.nCPU > 255 || s.nMem > 255 || s.nGPUSock > 255 || s.nGPUDev > 255 ||
		s.gpusPer > 255 || len(s.hostname) > maxBlockString || len(s.arch) > maxBlockString {
		return nil, fmt.Errorf("tsdb: sample shape too large for block schema")
	}
	minTs, maxTs := samples[0].Timestamp, samples[0].Timestamp
	for _, p := range samples[1:] {
		if schemaOf(p) != s {
			return nil, fmt.Errorf("tsdb: mixed sample schemas in one block")
		}
		minTs = math.Min(minTs, p.Timestamp)
		maxTs = math.Max(maxTs, p.Timestamp)
	}

	// Transpose into per-channel columns.
	n := len(samples)
	ts := make([]float64, n)
	cols := make([][]float64, s.channels())
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	for i, p := range samples {
		ts[i] = p.Timestamp
		c := 0
		cols[c][i] = p.NodeWatts
		c++
		for j := 0; j < s.nCPU; j++ {
			cols[c][i] = p.SocketCPUWatts[j]
			c++
		}
		for j := 0; j < s.nMem; j++ {
			cols[c][i] = p.SocketMemWatts[j]
			c++
		}
		for j := 0; j < s.nGPUSock; j++ {
			cols[c][i] = p.SocketGPUWatts[j]
			c++
		}
		for j := 0; j < s.nGPUDev; j++ {
			cols[c][i] = p.GPUWatts[j]
			c++
		}
	}

	var flags byte
	if s.memNil {
		flags |= 1 << 0
	}
	if s.gpuSNil {
		flags |= 1 << 1
	}
	if s.gpuDNil {
		flags |= 1 << 2
	}
	if s.cpuNil {
		flags |= 1 << 3
	}

	buf := binary.LittleEndian.AppendUint32(nil, blockMagic)
	buf = append(buf, blockVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(minTs))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(maxTs))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.hostname)))
	buf = append(buf, s.hostname...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.arch)))
	buf = append(buf, s.arch...)
	buf = append(buf, flags, byte(s.nCPU), byte(s.nMem), byte(s.nGPUSock), byte(s.nGPUDev), byte(s.gpusPer))

	appendStream := func(stream []byte) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(stream)))
		buf = append(buf, stream...)
	}
	appendStream(encodeTimestamps(ts))
	for _, col := range cols {
		appendStream(encodeValues(col))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// byteCursor is a bounds-checked reader over a block image.
type byteCursor struct {
	data []byte
	pos  int
}

func (c *byteCursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.pos+n > len(c.data) {
		return nil, errShortStream
	}
	b := c.data[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

func (c *byteCursor) u8() (byte, error) {
	b, err := c.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *byteCursor) u16() (uint16, error) {
	b, err := c.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (c *byteCursor) u32() (uint32, error) {
	b, err := c.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *byteCursor) f64() (float64, error) {
	b, err := c.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// blockHeader is the decoded header: the index entry plus the schema.
type blockHeader struct {
	schema blockSchema
	count  int
	minTs  float64
	maxTs  float64
}

// decodeBlockHeader verifies the envelope (size, CRC, magic, version)
// and parses the header fields, leaving cur positioned at the first
// stream length.
func decodeBlockHeader(data []byte) (blockHeader, *byteCursor, error) {
	var h blockHeader
	if len(data) < 12 || len(data) > maxBlockBytes {
		return h, nil, fmt.Errorf("tsdb: block size %d out of range", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return h, nil, fmt.Errorf("tsdb: block CRC mismatch")
	}
	cur := &byteCursor{data: body}
	magic, err := cur.u32()
	if err != nil || magic != blockMagic {
		return h, nil, fmt.Errorf("tsdb: bad block magic")
	}
	version, err := cur.u8()
	if err != nil || version != blockVersion {
		return h, nil, fmt.Errorf("tsdb: unsupported block version %d", version)
	}
	count, err := cur.u32()
	if err != nil {
		return h, nil, err
	}
	// A sample costs at least one timestamp bit, so count can never
	// exceed 8× the file size — rejects hostile counts before any
	// count-proportional work.
	if int64(count) > int64(len(data))*8 {
		return h, nil, fmt.Errorf("tsdb: block count %d impossible for %d bytes", count, len(data))
	}
	h.count = int(count)
	if h.minTs, err = cur.f64(); err != nil {
		return h, nil, err
	}
	if h.maxTs, err = cur.f64(); err != nil {
		return h, nil, err
	}
	readString := func() (string, error) {
		n, err := cur.u16()
		if err != nil {
			return "", err
		}
		if int(n) > maxBlockString {
			return "", fmt.Errorf("tsdb: block string length %d too large", n)
		}
		b, err := cur.bytes(int(n))
		return string(b), err
	}
	if h.schema.hostname, err = readString(); err != nil {
		return h, nil, err
	}
	if h.schema.arch, err = readString(); err != nil {
		return h, nil, err
	}
	var fields [6]byte
	for i := range fields {
		if fields[i], err = cur.u8(); err != nil {
			return h, nil, err
		}
	}
	flags := fields[0]
	h.schema.memNil = flags&(1<<0) != 0
	h.schema.gpuSNil = flags&(1<<1) != 0
	h.schema.gpuDNil = flags&(1<<2) != 0
	h.schema.cpuNil = flags&(1<<3) != 0
	h.schema.nCPU = int(fields[1])
	h.schema.nMem = int(fields[2])
	h.schema.nGPUSock = int(fields[3])
	h.schema.nGPUDev = int(fields[4])
	h.schema.gpusPer = int(fields[5])
	if h.schema.memNil && h.schema.nMem != 0 ||
		h.schema.gpuSNil && h.schema.nGPUSock != 0 ||
		h.schema.gpuDNil && h.schema.nGPUDev != 0 ||
		h.schema.cpuNil && h.schema.nCPU != 0 {
		return h, nil, fmt.Errorf("tsdb: block schema flags contradict channel counts")
	}
	return h, cur, nil
}

// decodeBlock decodes a full block image back into samples.
func decodeBlock(data []byte) (blockHeader, []variorum.NodePower, error) {
	h, cur, err := decodeBlockHeader(data)
	if err != nil {
		return h, nil, err
	}
	readStream := func() ([]byte, error) {
		n, err := cur.u32()
		if err != nil {
			return nil, err
		}
		return cur.bytes(int(n))
	}
	tsStream, err := readStream()
	if err != nil {
		return h, nil, err
	}
	ts, err := decodeTimestamps(tsStream, h.count)
	if err != nil {
		return h, nil, err
	}
	s := h.schema
	cols := make([][]float64, s.channels())
	for i := range cols {
		stream, err := readStream()
		if err != nil {
			return h, nil, err
		}
		if cols[i], err = decodeValues(stream, h.count); err != nil {
			return h, nil, err
		}
	}

	capHint := h.count
	if capHint > preallocCap {
		capHint = preallocCap
	}
	out := make([]variorum.NodePower, 0, capHint)
	for i := 0; i < h.count; i++ {
		p := variorum.NodePower{
			Hostname:           s.hostname,
			Timestamp:          ts[i],
			Arch:               s.arch,
			GPUsPerSensorEntry: s.gpusPer,
		}
		c := 0
		p.NodeWatts = cols[c][i]
		c++
		if !s.cpuNil {
			p.SocketCPUWatts = make([]float64, s.nCPU)
			for j := 0; j < s.nCPU; j++ {
				p.SocketCPUWatts[j] = cols[c][i]
				c++
			}
		} else {
			c += s.nCPU
		}
		if !s.memNil {
			p.SocketMemWatts = make([]float64, s.nMem)
			for j := 0; j < s.nMem; j++ {
				p.SocketMemWatts[j] = cols[c][i]
				c++
			}
		} else {
			c += s.nMem
		}
		if !s.gpuSNil {
			p.SocketGPUWatts = make([]float64, s.nGPUSock)
			for j := 0; j < s.nGPUSock; j++ {
				p.SocketGPUWatts[j] = cols[c][i]
				c++
			}
		} else {
			c += s.nGPUSock
		}
		if !s.gpuDNil {
			p.GPUWatts = make([]float64, s.nGPUDev)
			for j := 0; j < s.nGPUDev; j++ {
				p.GPUWatts[j] = cols[c][i]
				c++
			}
		} else {
			c += s.nGPUDev
		}
		out = append(out, p)
	}
	return h, out, nil
}
