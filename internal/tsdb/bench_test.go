package tsdb

import (
	"testing"

	"fluxpower/internal/variorum"
)

func BenchmarkStoreAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(mkSample(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockEncode(b *testing.B) {
	samples := make([]variorum.NodePower, 4096)
	for i := range samples {
		samples[i] = mkSample(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeBlock(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockDecode(b *testing.B) {
	samples := make([]variorum.NodePower, 4096)
	for i := range samples {
		samples[i] = mkSample(i)
	}
	img, err := encodeBlock(samples)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := decodeBlock(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreRecovery(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		b.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		if err := s.Append(mkSample(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Config{})
		if err != nil {
			b.Fatal(err)
		}
		all, err := s.All()
		if err != nil {
			b.Fatal(err)
		}
		if len(all) != n {
			b.Fatalf("recovered %d samples", len(all))
		}
		s.Crash() // avoid Close rewriting meta with ever-growing recoveries
	}
}
