package tsdb

import (
	"math"
	"math/bits"
)

// This file holds the two Gorilla-style bit codecs a block is built
// from (Pelkonen et al., "Gorilla: A Fast, Scalable, In-Memory Time
// Series Database", adapted for float timestamps):
//
//   - timestamps: delta-of-delta over the IEEE-754 *bit patterns*
//     interpreted as int64. Working on bit patterns keeps the codec pure
//     integer arithmetic, so every float — including NaN payloads and
//     infinities — round-trips byte-exactly, and a fixed sampling cadence
//     still yields dod == 0 almost everywhere (the bit-pattern delta of a
//     constant stride is constant within a binade and only changes at
//     power-of-two boundaries, a handful of times per trace).
//   - values: classic XOR float compression. Identical consecutive
//     values cost one bit; values sharing the predecessor's meaningful-bit
//     window cost '10' plus the window; anything else re-describes the
//     window with 5 leading-zero bits and a 6-bit length.
//
// Both decoders treat a stream that ends early as errShortStream and
// never allocate proportionally to anything but bits actually present.

// putDoD appends one signed delta-of-delta using Gorilla's prefix
// buckets, widened with a 64-bit escape so arbitrary bit-pattern deltas
// stay lossless.
func putDoD(w *bitWriter, v int64) {
	switch {
	case v == 0:
		w.writeBits(0, 1)
	case -63 <= v && v <= 64:
		w.writeBits(0b10, 2)
		w.writeBits(uint64(v+63), 7)
	case -255 <= v && v <= 256:
		w.writeBits(0b110, 3)
		w.writeBits(uint64(v+255), 9)
	case -2047 <= v && v <= 2048:
		w.writeBits(0b1110, 4)
		w.writeBits(uint64(v+2047), 12)
	case -(1<<31)+1 <= v && v <= 1<<31:
		w.writeBits(0b11110, 5)
		w.writeBits(uint64(v+(1<<31)-1), 32)
	default:
		w.writeBits(0b11111, 5)
		w.writeBits(uint64(v), 64)
	}
}

// getDoD reads one delta-of-delta written by putDoD.
func getDoD(r *bitReader) (int64, error) {
	prefix := 0
	for prefix < 5 {
		b, err := r.readBits(1)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			break
		}
		prefix++
	}
	switch prefix {
	case 0:
		return 0, nil
	case 1:
		u, err := r.readBits(7)
		return int64(u) - 63, err
	case 2:
		u, err := r.readBits(9)
		return int64(u) - 255, err
	case 3:
		u, err := r.readBits(12)
		return int64(u) - 2047, err
	case 4:
		u, err := r.readBits(32)
		return int64(u) - (1<<31 - 1), err
	default:
		u, err := r.readBits(64)
		return int64(u), err
	}
}

// encodeTimestamps packs ts as first-value-raw + delta-of-delta over
// bit patterns.
func encodeTimestamps(ts []float64) []byte {
	var w bitWriter
	var prev, prevDelta int64
	for i, t := range ts {
		b := int64(math.Float64bits(t))
		if i == 0 {
			w.writeBits(uint64(b), 64)
		} else {
			delta := b - prev
			putDoD(&w, delta-prevDelta)
			prevDelta = delta
		}
		prev = b
	}
	return w.bytes()
}

// decodeTimestamps unpacks count timestamps from data. The preallocation
// is capped independently of count so a hostile header cannot force a
// large allocation before the stream runs dry.
func decodeTimestamps(data []byte, count int) ([]float64, error) {
	r := &bitReader{buf: data}
	capHint := count
	if capHint > preallocCap {
		capHint = preallocCap
	}
	out := make([]float64, 0, capHint)
	var prev, prevDelta int64
	for i := 0; i < count; i++ {
		if i == 0 {
			u, err := r.readBits(64)
			if err != nil {
				return nil, err
			}
			prev = int64(u)
		} else {
			dod, err := getDoD(r)
			if err != nil {
				return nil, err
			}
			prevDelta += dod
			prev += prevDelta
		}
		out = append(out, math.Float64frombits(uint64(prev)))
	}
	return out, nil
}

// preallocCap bounds decode-side slice preallocation (in elements); the
// slices still grow to the true count by appending, so the cap only
// defends against hostile counts, it does not truncate.
const preallocCap = 1 << 16

// xorLeadingNone marks "no meaningful-bit window established yet".
const xorLeadingNone = 0xFF

// encodeValues packs one float channel with XOR compression.
func encodeValues(vals []float64) []byte {
	var w bitWriter
	var prev uint64
	leading, trailing := uint8(xorLeadingNone), uint8(0)
	for i, v := range vals {
		cur := math.Float64bits(v)
		if i == 0 {
			w.writeBits(cur, 64)
			prev = cur
			continue
		}
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.writeBits(0, 1)
			continue
		}
		lz := uint8(bits.LeadingZeros64(xor))
		if lz > 31 {
			lz = 31 // 5-bit field; extra leading zeros ride in the window
		}
		tz := uint8(bits.TrailingZeros64(xor))
		if leading != xorLeadingNone && lz >= leading && tz >= trailing {
			// Fits the previous window: '10' + the window's middle bits.
			sig := 64 - uint(leading) - uint(trailing)
			w.writeBits(0b10, 2)
			w.writeBits(xor>>trailing, sig)
			continue
		}
		leading, trailing = lz, tz
		sig := 64 - uint(lz) - uint(tz)
		w.writeBits(0b11, 2)
		w.writeBits(uint64(lz), 5)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>tz, sig)
	}
	return w.bytes()
}

// decodeValues unpacks count floats from one XOR-compressed channel.
func decodeValues(data []byte, count int) ([]float64, error) {
	r := &bitReader{buf: data}
	capHint := count
	if capHint > preallocCap {
		capHint = preallocCap
	}
	out := make([]float64, 0, capHint)
	var prev uint64
	leading, trailing := uint(xorLeadingNone), uint(0)
	for i := 0; i < count; i++ {
		if i == 0 {
			u, err := r.readBits(64)
			if err != nil {
				return nil, err
			}
			prev = u
			out = append(out, math.Float64frombits(prev))
			continue
		}
		ctrl, err := r.readBits(1)
		if err != nil {
			return nil, err
		}
		if ctrl == 0 {
			out = append(out, math.Float64frombits(prev))
			continue
		}
		reuse, err := r.readBits(1)
		if err != nil {
			return nil, err
		}
		if reuse == 0 {
			// '10': reuse the established window.
			if leading == xorLeadingNone {
				return nil, errShortStream // window reuse before any window: hostile
			}
		} else {
			// '11': new window description.
			lz, err := r.readBits(5)
			if err != nil {
				return nil, err
			}
			sigm1, err := r.readBits(6)
			if err != nil {
				return nil, err
			}
			sig := uint(sigm1) + 1
			if uint(lz)+sig > 64 {
				return nil, errShortStream
			}
			leading = uint(lz)
			trailing = 64 - uint(lz) - sig
		}
		sig := 64 - leading - trailing
		mid, err := r.readBits(sig)
		if err != nil {
			return nil, err
		}
		prev ^= mid << trailing
		out = append(out, math.Float64frombits(prev))
	}
	return out, nil
}
