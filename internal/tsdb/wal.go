package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WAL record framing: [u32 payload length][u32 CRC32 of payload][payload],
// little-endian. Appends accumulate in an in-memory pending buffer; Sync
// writes the buffer and fsyncs, so a crash loses exactly the un-synced
// suffix and replay sees synced records whole. A torn final write (power
// loss mid-fsync, or a deliberately truncated file) parses as a clean
// prefix: the first malformed frame truncates the rest of the file.

// maxFrame bounds one framed payload; larger length prefixes are treated
// as corruption.
const maxFrame = 1 << 20

// appendFrame frames payload onto dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// splitFrames parses every clean frame from data. clean is how many
// prefix bytes held well-formed frames; torn reports whether anything
// (a partial header, an oversized length, a CRC mismatch, a short
// payload) followed them.
func splitFrames(data []byte) (payloads [][]byte, clean int, torn bool) {
	pos := 0
	for {
		if pos == len(data) {
			return payloads, pos, false
		}
		if len(data)-pos < 8 {
			return payloads, pos, true
		}
		n := binary.LittleEndian.Uint32(data[pos:])
		sum := binary.LittleEndian.Uint32(data[pos+4:])
		if n > maxFrame || pos+8+int(n) > len(data) {
			return payloads, pos, true
		}
		payload := data[pos+8 : pos+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, pos, true
		}
		payloads = append(payloads, payload)
		pos += 8 + int(n)
	}
}

// segmentName returns the WAL file name for the segment whose first
// record has the given global index; the fixed-width hex keeps
// lexicographic and numeric order identical.
func segmentName(firstIndex uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstIndex)
}

// parseSegmentName extracts the first-record index from a WAL file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hexPart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// segmentInfo describes one on-disk WAL segment found at recovery.
type segmentInfo struct {
	path  string
	first uint64 // global index of the segment's first record
	count int    // clean records replayed from it
	bytes int64
}

// listSegments returns the WAL segments in dir ordered by first index.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, e.Name()), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// walWriter is the active WAL segment: an open file plus the pending
// (appended but not yet fsynced) byte buffer.
type walWriter struct {
	f           *os.File
	path        string
	firstIndex  uint64
	count       int   // records appended to this segment, incl. pending
	syncedBytes int64 // bytes durably on disk
	pending     []byte
	pendingRecs int
}

// openSegment creates a fresh segment whose first record will carry the
// given global index.
func openSegment(dir string, firstIndex uint64) (*walWriter, error) {
	path := filepath.Join(dir, segmentName(firstIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, path: path, firstIndex: firstIndex}, nil
}

// append frames payload into the pending buffer.
func (w *walWriter) append(payload []byte) {
	w.pending = appendFrame(w.pending, payload)
	w.pendingRecs++
	w.count++
}

// size returns the segment's total bytes, synced plus pending.
func (w *walWriter) size() int64 { return w.syncedBytes + int64(len(w.pending)) }

// sync writes the pending buffer and fsyncs, returning how many records
// became durable.
func (w *walWriter) sync() (int, error) {
	if len(w.pending) == 0 {
		return 0, nil
	}
	if _, err := w.f.Write(w.pending); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	w.syncedBytes += int64(len(w.pending))
	recs := w.pendingRecs
	w.pending = nil
	w.pendingRecs = 0
	return recs, nil
}

// crash models an unclean stop: the pending buffer is dropped on the
// floor and the file closed without flushing — what a kill -9 or power
// loss leaves on disk.
func (w *walWriter) crash() {
	w.pending = nil
	w.pendingRecs = 0
	_ = w.f.Close()
}

// drop closes the segment discarding pending bytes — used when a seal
// makes the whole segment redundant with a fsynced block.
func (w *walWriter) drop() error {
	w.pending = nil
	w.pendingRecs = 0
	return w.f.Close()
}

// close syncs and closes.
func (w *walWriter) close() error {
	if _, err := w.sync(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}
