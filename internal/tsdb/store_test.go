package tsdb

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"fluxpower/internal/variorum"
)

func testConfig() Config {
	return Config{
		BlockSamples:   64,
		SegmentBytes:   8 << 10,
		SyncEvery:      8,
		RetainBytes:    -1,
		TierPeriodsSec: []float64{60},
	}
}

func appendN(t *testing.T, s *Store, n, from int) []variorum.NodePower {
	t.Helper()
	var out []variorum.NodePower
	for i := from; i < from+n; i++ {
		p := mkSample(i)
		if err := s.Append(p); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		out = append(out, p)
	}
	return out
}

func TestStoreAppendSelectReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 1000, 0)

	got, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, got, want)

	// A bounded range straddling block and head.
	lo, hi := want[100].Timestamp, want[990].Timestamp
	ranged, err := s.SelectRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, ranged, want[100:991])

	h := s.Health()
	if h.AppendedSamples != 1000 {
		t.Fatalf("AppendedSamples = %d", h.AppendedSamples)
	}
	if h.SealedBlocks != 1000/64 {
		t.Fatalf("SealedBlocks = %d, want %d", h.SealedBlocks, 1000/64)
	}
	if h.HeadSamples != 1000%64 {
		t.Fatalf("HeadSamples = %d, want %d", h.HeadSamples, 1000%64)
	}
	if h.DurableSamples+h.UnsyncedSamples != h.AppendedSamples {
		t.Fatalf("durability accounting: %+v", h)
	}
	if h.BytesOnDisk == 0 {
		t.Fatal("BytesOnDisk = 0")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean close loses nothing.
	s2, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err = s2.All()
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, got, want)
	h = s2.Health()
	if h.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", h.Recoveries)
	}
	if h.TornRecords != 0 || h.DroppedSegments != 0 || h.DroppedBlocks != 0 {
		t.Fatalf("clean reopen reported damage: %+v", h)
	}

	// Appends continue seamlessly after recovery.
	more := appendN(t, s2, 100, 1000)
	got, err = s2.All()
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, got, append(append([]variorum.NodePower{}, want...), more...))
}

func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	// Disable every implicit durability path (seal, rotation, SyncEvery):
	// only the explicit Sync below makes data durable.
	cfg.BlockSamples = 1 << 30
	cfg.SegmentBytes = 1 << 40
	cfg.SyncEvery = 1 << 30
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 500, 0)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 37, 500) // un-synced tail, doomed

	h := s.Health()
	if h.DurableSamples != 500 || h.UnsyncedSamples != 37 {
		t.Fatalf("pre-crash health: %+v", h)
	}
	if h.LastFsyncLagSec != 37*2 {
		t.Fatalf("LastFsyncLagSec = %v, want %v", h.LastFsyncLagSec, 37*2)
	}
	s.Crash()

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the durable prefix: nothing more, nothing less, byte-equal.
	sameJSON(t, got, want)
	h = s2.Health()
	if h.AppendedSamples != 500 || h.DurableSamples != 500 {
		t.Fatalf("post-recovery health: %+v", h)
	}
	if h.Recoveries != 1 {
		t.Fatalf("Recoveries = %d", h.Recoveries)
	}
}

func TestStoreCrashImmediatelyAfterOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Crash()
	s2, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("recovered %d samples from empty store", len(got))
	}
}

func TestStoreTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.BlockSamples = 1 << 30 // keep everything in the WAL
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 20, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: chop a few bytes off the newest segment.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments on disk")
	}
	last := segs[len(segs)-1].path
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	// The torn record is truncated, not fatal: the clean prefix survives.
	sameJSON(t, got, want[:19])
	h := s2.Health()
	if h.TornRecords == 0 {
		t.Fatalf("TornRecords = 0 after torn tail: %+v", h)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The tear was repaired on disk: a third open is clean.
	s3, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if h := s3.Health(); h.TornRecords != 0 {
		t.Fatalf("tear not repaired: %+v", h)
	}
	got, err = s3.All()
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, got, want[:19])
}

func TestStoreGarbageAppendedToSegment(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.BlockSamples = 1 << 30
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 10, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, got, want)
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.BlockSamples = 1 << 30 // no seals: force multi-segment WAL recovery
	cfg.SegmentBytes = 2 << 10
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 200, 0)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); h.Segments < 3 {
		t.Fatalf("Segments = %d, want several", h.Segments)
	}
	s.Crash()

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, got, want)
}

func TestStoreSchemaChangeSealsEarly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var want []variorum.NodePower
	for i := 0; i < 10; i++ {
		p := mkSample(i)
		want = append(want, p)
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 20; i++ {
		p := mkTiogaSample(i)
		want = append(want, p)
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if h := s.Health(); h.SealedBlocks != 1 {
		t.Fatalf("SealedBlocks = %d, want 1 (early seal at schema change)", h.SealedBlocks)
	}
	got, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, got, want)
}

// expectedTiers independently folds samples into buckets with the
// documented semantics, as a pin against the store's compactor.
func expectedTiers(samples []variorum.NodePower, period float64) []TierRec {
	var out []TierRec
	var cur TierRec
	curSet := false
	var lastTS, lastW float64
	for _, p := range samples {
		start := math.Trunc(p.Timestamp/period) * period
		if curSet && start != cur.StartSec {
			out = append(out, cur)
			curSet = false
		}
		if !curSet {
			cur = TierRec{StartSec: start, EndSec: start + period}
			curSet = true
		}
		w := p.TotalWatts()
		if lastTS > 0 && p.Timestamp > lastTS {
			cur.EnergyJ += (p.Timestamp - lastTS) * (w + lastW) / 2
		}
		cur.Power.Add(p)
		lastTS, lastW = p.Timestamp, w
	}
	return out // open final bucket intentionally omitted
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 1000, 0) // 2 s cadence: ts 10 .. 2008
	if err := s.Maintain(want[len(want)-1].Timestamp); err != nil {
		t.Fatal(err)
	}
	recs := s.TierRecords(60)
	if len(recs) == 0 {
		t.Fatal("no tier records after Maintain")
	}

	// Only sealed samples are compacted, and only finalized buckets
	// emitted: expected output is the independent fold over sealed
	// samples, minus its open final bucket.
	sealed := want[:len(want)-len(want)%64]
	exp := expectedTiers(sealed, 60)
	if len(recs) != len(exp) {
		t.Fatalf("got %d tier records, want %d", len(recs), len(exp))
	}
	for i := range exp {
		if recs[i] != exp[i] {
			t.Fatalf("tier[%d] = %+v, want %+v", i, recs[i], exp[i])
		}
	}

	// Idempotent: a second Maintain adds nothing.
	if err := s.Maintain(want[len(want)-1].Timestamp); err != nil {
		t.Fatal(err)
	}
	if again := s.TierRecords(60); len(again) != len(recs) {
		t.Fatalf("second Maintain grew tier log: %d -> %d", len(recs), len(again))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tier records survive restart.
	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs2 := s2.TierRecords(60)
	if len(recs2) != len(recs) {
		t.Fatalf("recovered %d tier records, want %d", len(recs2), len(recs))
	}
	for i := range recs {
		if recs[i] != recs2[i] {
			t.Fatalf("recovered tier[%d] = %+v, want %+v", i, recs2[i], recs[i])
		}
	}
}

func TestStoreGC(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 2000, 0)
	now := want[len(want)-1].Timestamp
	if err := s.Maintain(now); err != nil {
		t.Fatal(err)
	}
	before := s.Health()
	if !s.Covers(want[0].Timestamp) {
		t.Fatal("Covers false before any GC")
	}

	// Shrink the budget and run GC.
	s.mu.Lock()
	s.cfg.RetainBytes = before.BytesOnDisk / 4
	s.mu.Unlock()
	if err := s.Maintain(now); err != nil {
		t.Fatal(err)
	}
	after := s.Health()
	if after.SealedBlocks >= before.SealedBlocks {
		t.Fatalf("GC deleted nothing: %d -> %d blocks", before.SealedBlocks, after.SealedBlocks)
	}
	lost := s.LostBeforeSec()
	if math.IsInf(lost, -1) {
		t.Fatal("LostBeforeSec still -Inf after GC")
	}
	if s.Covers(want[0].Timestamp) {
		t.Fatal("Covers(oldest) true after GC deleted it")
	}
	if !s.Covers(lost + 1) {
		t.Fatal("Covers(just past watermark) = false")
	}

	// GC never outruns compaction: every deleted sample lives inside a
	// persisted tier bucket.
	if thr := s.TierRecords(60)[len(s.TierRecords(60))-1].EndSec; lost >= thr {
		t.Fatalf("GC deleted uncompacted data: lost %.0f, compacted through %.0f", lost, thr)
	}
	got, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("GC deleted everything")
	}
	// Survivors are an exact suffix of the input.
	sameJSON(t, got, want[len(want)-len(got):])
	// Tier records still describe the deleted range.
	if recs := s.TierRecords(60); recs[0].StartSec > want[0].Timestamp {
		t.Fatalf("tier history starts at %.0f, after oldest raw %.0f", recs[0].StartSec, want[0].Timestamp)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The loss watermark survives restart via meta.json.
	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.LostBeforeSec(); got != lost {
		t.Fatalf("recovered LostBeforeSec = %v, want %v", got, lost)
	}

	// And degrades conservatively if meta.json is lost.
	s2.Close()
	if err := os.Remove(filepath.Join(dir, "meta.json")); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.LostBeforeSec(); math.IsInf(got, -1) || got < lost {
		t.Fatalf("watermark after meta loss = %v, want ≥ %v", got, lost)
	}
}

func TestStoreClosedAndCrashedOps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err) // double close is a no-op
	}
	if err := s.Append(mkSample(0)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := s.Sync(); err == nil {
		t.Fatal("Sync after Close succeeded")
	}
	if _, err := s.All(); err == nil {
		t.Fatal("All after Close succeeded")
	}

	s2, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2.Crash()
	s2.Crash() // idempotent
	if err := s2.Close(); err != nil {
		t.Fatal("Close after Crash must be a no-op, got", err)
	}
}

func TestStoreCorruptBlockFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 100, 0) // one 64-sample block + 36 in the WAL
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the sealed block: its samples are gone (the WAL segment
	// covering them was deleted at seal), but recovery must carry on with
	// the un-sealed tail rather than fail.
	blocks, err := filepath.Glob(filepath.Join(dir, "blk-*.blk"))
	if err != nil || len(blocks) != 1 {
		t.Fatalf("blocks on disk: %v, %v", blocks, err)
	}
	data, err := os.ReadFile(blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(blocks[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	sameJSON(t, got, want[64:])
	if h := s2.Health(); h.DroppedBlocks != 1 {
		t.Fatalf("DroppedBlocks = %d, want 1", h.DroppedBlocks)
	}
}
