package tsdb

import "errors"

// errShortStream is returned when a bit stream ends before the declared
// sample count has been decoded — a torn or hostile block.
var errShortStream = errors.New("tsdb: bit stream exhausted")

// bitWriter packs bits MSB-first into a growing byte slice. The zero
// value is ready to use.
type bitWriter struct {
	buf  []byte
	free uint // unused low bits remaining in the last byte (0 = none)
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := w.free
		if take > n {
			take = n
		}
		chunk := (v >> (n - take)) & (1<<take - 1)
		w.buf[len(w.buf)-1] |= byte(chunk << (w.free - take))
		w.free -= take
		n -= take
	}
}

// bytes returns the packed stream. Trailing unused bits are zero.
func (w *bitWriter) bytes() []byte { return w.buf }

// bitReader consumes bits MSB-first from a byte slice. Every read is
// bounds-checked: hostile stream lengths surface as errShortStream, never
// a panic — the property FuzzBlockDecode leans on.
type bitReader struct {
	buf []byte
	pos int // absolute bit position
}

// readBits returns the next n bits (n ≤ 64) as the low bits of a uint64.
func (r *bitReader) readBits(n uint) (uint64, error) {
	if r.pos+int(n) > len(r.buf)*8 {
		return 0, errShortStream
	}
	var v uint64
	for n > 0 {
		idx := r.pos >> 3
		avail := 8 - uint(r.pos&7)
		take := avail
		if take > n {
			take = n
		}
		chunk := uint64(r.buf[idx]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += int(take)
		n -= take
	}
	return v, nil
}
