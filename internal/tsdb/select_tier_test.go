package tsdb

import (
	"math"
	"testing"
)

// TestSelectTierBoundaries is the windowed tier-read contract, table-
// driven at the bucket edges: a bucket belongs to [start, end] exactly
// when EndSec > start and StartSec <= end — the same ownership rule the
// in-memory archive uses, so planner code can treat both sources alike.
func TestSelectTierBoundaries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig()) // 60 s tier
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := appendN(t, s, 1000, 0) // 2 s cadence
	if err := s.Maintain(want[len(want)-1].Timestamp); err != nil {
		t.Fatal(err)
	}
	recs := s.TierRecords(60)
	if len(recs) < 5 {
		t.Fatalf("need at least 5 tier buckets, have %d", len(recs))
	}
	first, last := recs[0], recs[len(recs)-1]

	cases := []struct {
		name       string
		start, end float64
		wantFirst  float64 // StartSec of first expected bucket
		wantCount  int
	}{
		{"exact one bucket minus edges", recs[1].StartSec + 1, recs[1].EndSec - 1, recs[1].StartSec, 1},
		{"window equals bucket: right edge pulls the neighbor in", recs[1].StartSec, recs[1].EndSec, recs[1].StartSec, 2},
		{"start at EndSec excludes the bucket", recs[1].EndSec, recs[3].EndSec - 1, recs[2].StartSec, 2},
		{"end at StartSec includes the bucket", recs[1].StartSec + 1, recs[3].StartSec, recs[1].StartSec, 3},
		{"everything", math.Inf(-1), math.Inf(1), first.StartSec, len(recs)},
		{"before all data", first.StartSec - 1000, first.StartSec - 1, 0, 0},
		{"after all data", last.EndSec, last.EndSec + 1000, 0, 0},
		{"unconfigured period", 0, math.Inf(1), 0, 0},
	}
	for _, tc := range cases {
		period := 60.0
		if tc.name == "unconfigured period" {
			period = 600
		}
		got := s.SelectTier(period, tc.start, tc.end)
		if len(got) != tc.wantCount {
			t.Fatalf("%s: got %d buckets, want %d", tc.name, len(got), tc.wantCount)
		}
		if tc.wantCount > 0 && got[0].StartSec != tc.wantFirst {
			t.Fatalf("%s: first bucket starts %.0f, want %.0f", tc.name, got[0].StartSec, tc.wantFirst)
		}
		// Every returned bucket must actually intersect the window.
		for _, b := range got {
			if !(b.EndSec > tc.start && b.StartSec <= tc.end) {
				t.Fatalf("%s: bucket [%.0f,%.0f) outside window [%.1f,%.1f]",
					tc.name, b.StartSec, b.EndSec, tc.start, tc.end)
			}
		}
	}

	firstStart, lastEnd, ok := s.TierCoverage(60)
	if !ok || firstStart != first.StartSec || lastEnd != last.EndSec {
		t.Fatalf("TierCoverage = (%.0f, %.0f, %v), want (%.0f, %.0f, true)",
			firstStart, lastEnd, ok, first.StartSec, last.EndSec)
	}
	if _, _, ok := s.TierCoverage(600); ok {
		t.Fatal("TierCoverage ok for unconfigured period")
	}
	if ps := s.TierPeriods(); len(ps) != 1 || ps[0] != 60 {
		t.Fatalf("TierPeriods = %v", ps)
	}
}

// TestSelectTierAcrossGCWatermark: GC deletes raw blocks but never tier
// logs, so a window reaching below the loss watermark still reads
// buckets there — the planner's "coarse history outlives raw history"
// contract.
func TestSelectTierAcrossGCWatermark(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := appendN(t, s, 2000, 0)
	now := want[len(want)-1].Timestamp
	if err := s.Maintain(now); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.cfg.RetainBytes = s.blockBytes / 4
	s.mu.Unlock()
	if err := s.Maintain(now); err != nil {
		t.Fatal(err)
	}
	lost := s.LostBeforeSec()
	if math.IsInf(lost, -1) {
		t.Fatal("GC deleted nothing; cannot exercise the watermark")
	}
	if s.Covers(lost) {
		t.Fatal("Covers(watermark) must be false")
	}
	// A window straddling the watermark still reads tier buckets on both
	// sides of it.
	got := s.SelectTier(60, lost-120, lost+120)
	if len(got) == 0 {
		t.Fatal("no tier buckets across the GC watermark")
	}
	var below, above bool
	for _, b := range got {
		if b.StartSec < lost {
			below = true
		}
		if b.EndSec > lost {
			above = true
		}
	}
	if !below || !above {
		t.Fatalf("buckets do not straddle the watermark %.0f: below=%v above=%v", lost, below, above)
	}
	// And the whole pre-watermark history is still readable.
	all := s.SelectTier(60, math.Inf(-1), lost)
	if len(all) == 0 || all[0].StartSec > want[0].Timestamp {
		t.Fatalf("tier history before watermark unreadable: %d buckets", len(all))
	}
}
