package tsdb

import (
	"math"
	"math/rand"
	"testing"
)

func roundTripTimestamps(t *testing.T, ts []float64) {
	t.Helper()
	enc := encodeTimestamps(ts)
	got, err := decodeTimestamps(enc, len(ts))
	if err != nil {
		t.Fatalf("decodeTimestamps: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("len = %d, want %d", len(got), len(ts))
	}
	for i := range ts {
		if math.Float64bits(got[i]) != math.Float64bits(ts[i]) {
			t.Fatalf("ts[%d] = %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(ts[i]))
		}
	}
}

func roundTripValues(t *testing.T, vals []float64) {
	t.Helper()
	enc := encodeValues(vals)
	got, err := decodeValues(enc, len(vals))
	if err != nil {
		t.Fatalf("decodeValues: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len = %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("val[%d] = %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}
}

func TestTimestampCodecRoundTrip(t *testing.T) {
	cases := map[string][]float64{
		"empty":    nil,
		"single":   {42.5},
		"constant": {10, 12, 14, 16, 18, 20},
		"irregular": {
			0.5, 2.125, 2.126, 100, 101.5, 1e6, 1e6 + 2,
		},
		"binade crossing": { // constant stride across a power-of-two boundary
			1022, 1024, 1026, 1028, 2046, 2048, 2050,
		},
		"special": {
			0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
			math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		},
	}
	for name, ts := range cases {
		t.Run(name, func(t *testing.T) { roundTripTimestamps(t, ts) })
	}
	// A long fixed-cadence trace should compress to roughly a bit per
	// sample after the header.
	long := make([]float64, 10000)
	for i := range long {
		long[i] = 1000 + float64(i)*2
	}
	enc := encodeTimestamps(long)
	if len(enc) > 1500 {
		t.Fatalf("fixed-cadence encoding is %d bytes for %d samples; want ≲1.2 bits/sample", len(enc), len(long))
	}
	roundTripTimestamps(t, long)
}

func TestValueCodecRoundTrip(t *testing.T) {
	cases := map[string][]float64{
		"empty":    nil,
		"single":   {-1},
		"constant": {212.5, 212.5, 212.5, 212.5},
		"slow drift": {
			200, 200.25, 200.5, 200.25, 201, 200.75,
		},
		"special": {
			0, math.Copysign(0, -1), -1, math.Inf(1), math.NaN(), 1e-300, 1e300,
		},
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) { roundTripValues(t, vals) })
	}
}

func TestCodecRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		ts := make([]float64, n)
		vals := make([]float64, n)
		cur := rng.Float64() * 1e6
		for i := 0; i < n; i++ {
			cur += rng.Float64() * 10
			ts[i] = cur
			switch rng.Intn(4) {
			case 0:
				vals[i] = math.Float64frombits(rng.Uint64()) // arbitrary bits, incl. NaN
			case 1:
				if i > 0 {
					vals[i] = vals[i-1]
				}
			default:
				vals[i] = 100 + rng.NormFloat64()*30
			}
		}
		roundTripTimestamps(t, ts)
		roundTripValues(t, vals)
	}
}

func TestDoDBuckets(t *testing.T) {
	// Exercise every bucket boundary, both signs, and the 64-bit escape.
	vals := []int64{
		0, 1, -1, 63, -63, 64, -64, 65, 255, -255, 256, -256, 257,
		2047, -2047, 2048, -2048, 2049,
		1 << 20, -(1 << 20), 1 << 31, -(1 << 31) + 1, 1<<31 + 1, -(1 << 31),
		math.MaxInt64, math.MinInt64,
	}
	var w bitWriter
	for _, v := range vals {
		putDoD(&w, v)
	}
	r := &bitReader{buf: w.bytes()}
	for i, want := range vals {
		got, err := getDoD(r)
		if err != nil {
			t.Fatalf("getDoD[%d]: %v", i, err)
		}
		if got != want {
			t.Fatalf("dod[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestDecodeShortStream(t *testing.T) {
	enc := encodeValues([]float64{1, 2, 3, 4})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeValues(enc[:cut], 4); err == nil && cut < len(enc)-1 {
			// The final byte may hold only padding bits; any earlier cut
			// must fail.
			t.Fatalf("decodeValues accepted %d/%d bytes", cut, len(enc))
		}
	}
	if _, err := decodeTimestamps(nil, 3); err == nil {
		t.Fatal("decodeTimestamps accepted empty stream for count 3")
	}
}
