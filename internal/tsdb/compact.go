package tsdb

import (
	"encoding/json"
	"os"
	"sort"

	"fluxpower/internal/variorum"
)

// tierAccum folds samples into fixed-period buckets with exactly the
// semantics of powermon's in-memory tiers: a bucket finalizes when a
// sample crosses its end boundary, and each trapezoid energy segment is
// charged to the bucket where the segment ends. Keeping the fold
// identical is what lets a recovered archive adopt persisted buckets
// without drift against the ones it would have computed live.
type tierAccum struct {
	period float64
	cur    TierRec
	curSet bool
	lastTS float64
	lastW  float64
	out    []TierRec
}

func (a *tierAccum) push(p variorum.NodePower) {
	bucketStart := float64(int64(p.Timestamp/a.period)) * a.period
	if a.curSet && bucketStart != a.cur.StartSec {
		a.out = append(a.out, a.cur)
		a.curSet = false
	}
	if !a.curSet {
		a.cur = TierRec{StartSec: bucketStart, EndSec: bucketStart + a.period}
		a.curSet = true
	}
	w := p.TotalWatts()
	if a.lastTS > 0 && p.Timestamp > a.lastTS {
		a.cur.EnergyJ += (p.Timestamp - a.lastTS) * (w + a.lastW) / 2
	}
	a.cur.Power.Add(p)
	a.lastTS, a.lastW = p.Timestamp, w
}

// compactLocked folds sealed blocks into each configured tier, emitting
// only buckets that finalized past the previous high-water mark. The
// fold restarts one block before the mark so the first new bucket's
// trapezoid segment sees its true predecessor sample; re-formed older
// buckets are simply filtered out, so compaction is idempotent.
func (s *Store) compactLocked() error {
	for _, period := range s.cfg.TierPeriodsSec {
		if err := s.compactTierLocked(period); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) compactTierLocked(period float64) error {
	if len(s.blocks) == 0 {
		return nil
	}
	thr := s.compactedThrough[period]
	idx := sort.Search(len(s.blocks), func(i int) bool { return s.blocks[i].maxTs >= thr })
	if idx == len(s.blocks) {
		return nil // every sealed sample already compacted
	}
	start := idx
	if start > 0 {
		start-- // priming block: supplies the predecessor sample
	}
	acc := tierAccum{period: period}
	for i := start; i < len(s.blocks); i++ {
		data, err := os.ReadFile(s.blocks[i].path)
		if err != nil {
			return err
		}
		_, samples, err := decodeBlock(data)
		if err != nil {
			return err
		}
		for _, p := range samples {
			acc.push(p)
		}
	}
	var fresh []TierRec
	for _, r := range acc.out {
		if r.EndSec > thr {
			fresh = append(fresh, r)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	var buf []byte
	for _, r := range fresh {
		payload, err := json.Marshal(r)
		if err != nil {
			return err
		}
		buf = appendFrame(buf, payload)
	}
	f, err := os.OpenFile(s.tierLogPath(period), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	s.tierRecs[period] = append(s.tierRecs[period], fresh...)
	s.compactedThrough[period] = fresh[len(fresh)-1].EndSec
	return nil
}

// gcLocked deletes the oldest sealed blocks while the size or age bound
// is exceeded — but only blocks every configured tier has fully
// compacted (cand.maxTs strictly below every compaction high-water
// mark). Deleted samples therefore always live inside persisted tier
// buckets, which a recovering archive adopts wholesale before replaying
// any raw sample, so no bucket is ever half-rebuilt. The newest block is
// always retained.
func (s *Store) gcLocked(nowSec float64) error {
	for len(s.blocks) > 1 {
		over := s.cfg.RetainBytes >= 0 && s.blockBytes > s.cfg.RetainBytes
		old := s.cfg.RetainSec > 0 && s.blocks[0].maxTs < nowSec-s.cfg.RetainSec
		if !over && !old {
			return nil
		}
		cand := s.blocks[0]
		for _, p := range s.cfg.TierPeriodsSec {
			if cand.maxTs >= s.compactedThrough[p] {
				return nil // a tier has not finished compacting this block
			}
		}
		if err := os.Remove(cand.path); err != nil {
			return err
		}
		s.blocks = s.blocks[1:]
		s.blockBytes -= cand.bytes
		if cand.maxTs > s.gcLostTs {
			s.gcLostTs = cand.maxTs
		}
		s.writeMeta()
	}
	return nil
}
