package tsdb

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"fluxpower/internal/variorum"
)

// fuzzSeeds builds the canonical seed images: valid blocks of each
// schema shape plus a few hand-broken variants.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	for _, mk := range []func(int) variorum.NodePower{mkSample, mkTiogaSample} {
		var samples []variorum.NodePower
		for i := 0; i < 48; i++ {
			samples = append(samples, mk(i))
		}
		img, err := encodeBlock(samples)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, img)
		seeds = append(seeds, img[:len(img)/2]) // truncated
		flip := append([]byte(nil), img...)
		flip[9] ^= 0x40 // corrupt the count field
		seeds = append(seeds, flip)
	}
	minimal, err := encodeBlock([]variorum.NodePower{{Hostname: "h", Timestamp: 1, Arch: "a", NodeWatts: 1}})
	if err != nil {
		panic(err)
	}
	seeds = append(seeds, minimal, []byte{}, []byte("FPB1"), bytes.Repeat([]byte{0xFF}, 64))
	return seeds
}

// bitsEqual compares two samples field-by-field with IEEE-754 bit
// equality (NaN-safe, unlike == or JSON).
func bitsEqual(a, b variorum.NodePower) bool {
	fe := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	se := func(x, y []float64) bool {
		if (x == nil) != (y == nil) || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !fe(x[i], y[i]) {
				return false
			}
		}
		return true
	}
	return a.Hostname == b.Hostname && fe(a.Timestamp, b.Timestamp) &&
		a.Arch == b.Arch && fe(a.NodeWatts, b.NodeWatts) &&
		se(a.SocketCPUWatts, b.SocketCPUWatts) && se(a.SocketMemWatts, b.SocketMemWatts) &&
		se(a.SocketGPUWatts, b.SocketGPUWatts) && se(a.GPUWatts, b.GPUWatts) &&
		a.GPUsPerSensorEntry == b.GPUsPerSensorEntry
}

// FuzzBlockDecode drives arbitrary bytes through the block decoder: it
// must never panic or allocate unboundedly, and anything it accepts must
// re-encode/re-decode to the same samples (the decoder defines the
// format; round-trip stability is what recovery relies on).
func FuzzBlockDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, samples, err := decodeBlock(data)
		if err != nil {
			return
		}
		if h.count != len(samples) {
			t.Fatalf("header count %d but %d samples", h.count, len(samples))
		}
		img, err := encodeBlock(samples)
		if err != nil {
			t.Fatalf("re-encode of accepted block failed: %v", err)
		}
		_, again, err := decodeBlock(img)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(samples) {
			t.Fatalf("round trip changed count: %d -> %d", len(samples), len(again))
		}
		for i := range samples {
			if !bitsEqual(samples[i], again[i]) {
				t.Fatalf("round trip changed sample %d", i)
			}
		}
		// splitFrames must also stay total on arbitrary bytes.
		payloads, clean, torn := splitFrames(data)
		if clean > len(data) || (torn && clean == len(data)) {
			t.Fatalf("splitFrames: clean=%d torn=%v for %d bytes", clean, torn, len(data))
		}
		again2, clean2, torn2 := splitFrames(data[:clean])
		if torn2 || clean2 != clean || len(again2) != len(payloads) {
			t.Fatal("splitFrames clean prefix does not re-parse cleanly")
		}
	})
}

// TestFuzzCorpusCommitted keeps the seed corpus materialized under
// testdata so CI's fuzz smoke starts from real block images even before
// any local fuzzing has populated the cache.
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzBlockDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeeds() {
		path := filepath.Join(dir, string(rune('a'+i))+"-seed")
		want := []byte("go test fuzz v1\n[]byte(" + quoteBytes(seed) + ")\n")
		got, err := os.ReadFile(path)
		if err == nil && bytes.Equal(got, want) {
			continue
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("materialized %s", path)
	}
}

func quoteBytes(b []byte) string {
	const hex = "0123456789abcdef"
	out := make([]byte, 0, len(b)*4+2)
	out = append(out, '"')
	for _, c := range b {
		out = append(out, '\\', 'x', hex[c>>4], hex[c&0xF])
	}
	return string(append(out, '"'))
}
