package ringbuf

import (
	"math/rand"
	"testing"
)

// TestPushAllEquivalence drives PushAll through every interesting size
// relation (empty ring, partial fill, exact fill, wrap, input larger
// than capacity, repeated bulk pushes) and checks element-for-element
// and counter-for-counter equivalence against a Push loop on a shadow
// ring.
func TestPushAllEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		cap     int
		preload int // elements pushed one by one before the bulk push
		bulk    []int
	}{
		{"empty-ring-empty-input", 4, 0, nil},
		{"empty-ring-partial", 4, 0, []int{10, 11}},
		{"empty-ring-exact-fill", 4, 0, []int{10, 11, 12, 13}},
		{"empty-ring-overflow-by-one", 4, 0, []int{10, 11, 12, 13, 14}},
		{"empty-ring-double-capacity", 4, 0, []int{10, 11, 12, 13, 14, 15, 16, 17}},
		{"partial-ring-fits", 4, 2, []int{10}},
		{"partial-ring-exact-fill", 4, 2, []int{10, 11}},
		{"partial-ring-overflows", 4, 2, []int{10, 11, 12}},
		{"full-ring-partial", 4, 4, []int{10, 11}},
		{"full-ring-full-replacement", 4, 4, []int{10, 11, 12, 13}},
		{"full-ring-larger-than-cap", 4, 4, []int{10, 11, 12, 13, 14, 15}},
		{"wrapped-head", 3, 5, []int{10, 11}},
		{"capacity-one", 1, 1, []int{10, 11, 12}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := New[int](tc.cap)
			want := New[int](tc.cap)
			for i := 0; i < tc.preload; i++ {
				got.Push(i)
				want.Push(i)
			}
			wantEvicted := 0
			for _, v := range tc.bulk {
				if want.Push(v) {
					wantEvicted++
				}
			}
			if ev := got.PushAll(tc.bulk); ev != wantEvicted {
				t.Errorf("PushAll returned %d evictions, Push loop evicted %d", ev, wantEvicted)
			}
			if got.Len() != want.Len() || got.Evicted() != want.Evicted() {
				t.Errorf("len/evicted = %d/%d, want %d/%d",
					got.Len(), got.Evicted(), want.Len(), want.Evicted())
			}
			for i := 0; i < want.Len(); i++ {
				if got.At(i) != want.At(i) {
					t.Errorf("At(%d) = %d, want %d", i, got.At(i), want.At(i))
				}
			}
		})
	}
}

// TestPushAllRandomized interleaves random Push and PushAll calls against
// a shadow ring driven purely by Push, so head alignment after arbitrary
// bulk sizes cannot drift.
func TestPushAllRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, capacity := range []int{1, 2, 3, 7, 64} {
		got := New[int](capacity)
		want := New[int](capacity)
		next := 0
		for step := 0; step < 500; step++ {
			if rng.Intn(2) == 0 {
				got.Push(next)
				want.Push(next)
				next++
				continue
			}
			batch := make([]int, rng.Intn(2*capacity+2))
			for i := range batch {
				batch[i] = next
				next++
			}
			wantEvicted := 0
			for _, v := range batch {
				if want.Push(v) {
					wantEvicted++
				}
			}
			if ev := got.PushAll(batch); ev != wantEvicted {
				t.Fatalf("cap %d step %d: PushAll evicted %d, want %d", capacity, step, ev, wantEvicted)
			}
			if got.Len() != want.Len() || got.Evicted() != want.Evicted() {
				t.Fatalf("cap %d step %d: len/evicted %d/%d, want %d/%d",
					capacity, step, got.Len(), got.Evicted(), want.Len(), want.Evicted())
			}
			for i := 0; i < want.Len(); i++ {
				if got.At(i) != want.At(i) {
					t.Fatalf("cap %d step %d: At(%d) = %d, want %d",
						capacity, step, i, got.At(i), want.At(i))
				}
			}
		}
	}
}

// The benchmark pair documents why PushAll exists: recovery seeds a
// 100k-sample ring from the tsdb store in bulk, and the copy-based bulk
// path beats the per-element modulo arithmetic of a Push loop.
func BenchmarkRingPushLoop(b *testing.B) {
	const n = 100_000
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	r := New[float64](n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range src {
			r.Push(v)
		}
	}
}

func BenchmarkRingPushAll(b *testing.B) {
	const n = 100_000
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	r := New[float64](n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PushAll(src)
	}
}
