package ringbuf

import (
	"math"
	"reflect"
	"testing"
)

// FuzzSelectRange cross-checks the binary-search window query against the
// reference predicate scan on fuzzer-chosen ring shapes: capacity, number
// of pushes (driving wrap-around and eviction), key spacing and query
// window all vary. The property is exact agreement — SelectRange exists
// only as a faster Select for monotonic keys, so any divergence is a bug.
func FuzzSelectRange(f *testing.F) {
	f.Add(int64(8), int64(5), 1.0, 3.0, int64(1))
	f.Add(int64(4), int64(16), 0.0, 100.0, int64(2)) // wrapped several times
	f.Add(int64(1), int64(3), 2.0, 2.0, int64(3))    // capacity 1, point window
	f.Add(int64(16), int64(0), 0.0, 10.0, int64(4))  // empty ring
	f.Add(int64(8), int64(8), 5.0, 1.0, int64(5))    // inverted window
	f.Add(int64(8), int64(8), -10.0, -1.0, int64(6)) // window before all keys
	f.Add(int64(8), int64(8), 1e12, 2e12, int64(7))  // window after all keys
	f.Add(int64(512), int64(4096), 100.0, 200.0, int64(8))

	f.Fuzz(func(t *testing.T, capacity, pushes int64, min, max float64, gapSeed int64) {
		if capacity <= 0 || capacity > 4096 {
			return // New panics on purpose for non-positive capacity
		}
		if pushes < 0 || pushes > 16384 {
			return
		}
		if math.IsNaN(min) || math.IsNaN(max) {
			return // a NaN window violates sort.Search's predicate contract
		}
		r := New[float64](int(capacity))
		// Non-decreasing keys with seed-dependent spacing, including runs
		// of duplicates — the shape of monotonic sample timestamps.
		key := 0.0
		for i := int64(0); i < pushes; i++ {
			gap := float64((gapSeed+i)%7) / 2 // 0, .5, 1, ... incl. repeats
			if gap < 0 {
				gap = -gap
			}
			key += gap
			r.Push(key)
		}

		id := func(v float64) float64 { return v }
		got := r.SelectRange(min, max, id)
		want := r.Select(func(v float64) bool { return v >= min && v <= max })
		if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("SelectRange disagrees with Select scan:\ncap=%d pushes=%d window=[%v,%v]\nfast: %v\nscan: %v",
				capacity, pushes, min, max, got, want)
		}

		lo, hi := r.IndexRange(min, max, id)
		if lo < 0 || hi < lo || hi > r.Len() {
			t.Fatalf("IndexRange out of bounds: [%d,%d) with len %d", lo, hi, r.Len())
		}
		if hi-lo != len(want) {
			t.Fatalf("IndexRange width %d != %d matches", hi-lo, len(want))
		}
	})
}
