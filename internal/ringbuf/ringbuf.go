// Package ringbuf implements the fixed-capacity circular buffer used by
// the flux-power-monitor node agent (paper §III-A).
//
// The node agent stores one power sample every sampling interval in a ring
// of configurable size (the paper's default holds 100,000 Variorum JSON
// samples, ~43.4 MB). When the ring wraps, the oldest samples are evicted;
// a later job-telemetry query that reaches past the evicted region is
// reported as a *partial* data set, which is exactly the completeness flag
// the monitor's CSV output carries.
package ringbuf

import (
	"fmt"
	"sort"
)

// Ring is a generic fixed-capacity circular buffer. The zero value is not
// usable; construct with New. Ring is not safe for concurrent use: in the
// simulation every ring is owned by a single node agent.
type Ring[T any] struct {
	buf     []T
	head    int    // index of the slot the next Push writes
	length  int    // number of live elements, <= cap
	evicted uint64 // total elements overwritten since creation
}

// New returns a ring holding at most capacity elements. It panics on a
// non-positive capacity, which would make every Push evict its own value.
func New[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ringbuf: capacity %d must be positive", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v, evicting the oldest element when full. It reports whether
// an eviction occurred.
func (r *Ring[T]) Push(v T) (evictedOld bool) {
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	if r.length < len(r.buf) {
		r.length++
		return false
	}
	r.evicted++
	return true
}

// PushAll appends vs in order, evicting the oldest elements as needed,
// and returns how many evictions occurred. It is observationally
// equivalent to calling Push on every element — same live elements, same
// order, same Evicted count — but costs at most two copy calls instead
// of one modulo-indexed store per element, which is what makes bulk
// archive recovery (the tsdb store seeding a 100k ring) cheap.
func (r *Ring[T]) PushAll(vs []T) (evicted int) {
	n := len(r.buf)
	k := len(vs)
	if k == 0 {
		return 0
	}
	if k >= n {
		// Only the newest n inputs survive; everything previously live and
		// every older input is evicted.
		evicted = r.length + k - n
		copy(r.buf, vs[k-n:])
		r.head = 0
		r.length = n
		r.evicted += uint64(evicted)
		return evicted
	}
	if over := r.length + k - n; over > 0 {
		evicted = over
	}
	m := copy(r.buf[r.head:], vs)
	copy(r.buf, vs[m:])
	r.head = (r.head + k) % n
	r.length += k - evicted
	r.evicted += uint64(evicted)
	return evicted
}

// Len returns the number of live elements.
func (r *Ring[T]) Len() int { return r.length }

// Cap returns the ring's fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Evicted returns the total number of elements overwritten since creation.
func (r *Ring[T]) Evicted() uint64 { return r.evicted }

// At returns the i-th oldest live element (0 = oldest). It panics when i is
// out of [0, Len()).
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.length {
		panic(fmt.Sprintf("ringbuf: index %d out of range [0,%d)", i, r.length))
	}
	start := (r.head - r.length + len(r.buf)) % len(r.buf)
	return r.buf[(start+i)%len(r.buf)]
}

// Oldest returns the oldest live element. ok is false when empty.
func (r *Ring[T]) Oldest() (v T, ok bool) {
	if r.length == 0 {
		return v, false
	}
	return r.At(0), true
}

// Newest returns the most recently pushed element. ok is false when empty.
func (r *Ring[T]) Newest() (v T, ok bool) {
	if r.length == 0 {
		return v, false
	}
	return r.At(r.length - 1), true
}

// Snapshot copies the live elements, oldest first, into a fresh slice.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, r.length)
	for i := 0; i < r.length; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Do calls fn for each live element, oldest first, stopping early if fn
// returns false. It avoids the allocation of Snapshot for scan-style
// aggregation (the monitor's job-window query).
func (r *Ring[T]) Do(fn func(v T) bool) {
	for i := 0; i < r.length; i++ {
		if !fn(r.At(i)) {
			return
		}
	}
}

// Select returns the live elements for which keep returns true, oldest
// first. The monitor uses this to extract the samples falling inside a
// job's [start, end] window.
func (r *Ring[T]) Select(keep func(v T) bool) []T {
	var out []T
	r.Do(func(v T) bool {
		if keep(v) {
			out = append(out, v)
		}
		return true
	})
	return out
}

// IndexRange returns the half-open index interval [lo, hi) of live
// elements whose key falls inside [min, max], assuming key is
// non-decreasing over the live elements (oldest to newest) — true for
// the monitor's monotonic sample timestamps. Both bounds are found by
// binary search, so a window query costs O(log n + matches) instead of
// the O(n) predicate scan of Select.
func (r *Ring[T]) IndexRange(min, max float64, key func(T) float64) (lo, hi int) {
	lo = sort.Search(r.length, func(i int) bool { return key(r.At(i)) >= min })
	hi = lo + sort.Search(r.length-lo, func(i int) bool { return key(r.At(lo+i)) > max })
	return lo, hi
}

// SelectRange returns the live elements whose key falls inside
// [min, max], oldest first, assuming key is non-decreasing over the live
// elements. It is the binary-search counterpart of Select for
// timestamp-window queries.
func (r *Ring[T]) SelectRange(min, max float64, key func(T) float64) []T {
	lo, hi := r.IndexRange(min, max, key)
	if hi <= lo {
		return nil
	}
	out := make([]T, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, r.At(i))
	}
	return out
}

// Reset discards all live elements. Capacity and eviction count persist;
// the FPP policy resets its FFT sample ring at every capping interval
// (Algorithm 1 line 42).
func (r *Ring[T]) Reset() {
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	r.head = 0
	r.length = 0
}
