package ringbuf

import (
	"testing"
	"testing/quick"
)

func TestPushAndLen(t *testing.T) {
	r := New[int](3)
	if r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh ring Len=%d Cap=%d", r.Len(), r.Cap())
	}
	for i := 1; i <= 3; i++ {
		if r.Push(i) {
			t.Fatalf("Push(%d) evicted before full", i)
		}
		if r.Len() != i {
			t.Fatalf("Len=%d after %d pushes", r.Len(), i)
		}
	}
}

func TestEvictionOrder(t *testing.T) {
	r := New[int](3)
	for i := 1; i <= 5; i++ {
		r.Push(i)
	}
	if r.Len() != 3 {
		t.Fatalf("Len=%d after wrap, want 3", r.Len())
	}
	if r.Evicted() != 2 {
		t.Fatalf("Evicted=%d, want 2", r.Evicted())
	}
	want := []int{3, 4, 5}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("At(%d)=%d, want %d", i, got, w)
		}
	}
}

func TestOldestNewest(t *testing.T) {
	r := New[string](2)
	if _, ok := r.Oldest(); ok {
		t.Fatal("Oldest ok on empty ring")
	}
	if _, ok := r.Newest(); ok {
		t.Fatal("Newest ok on empty ring")
	}
	r.Push("a")
	r.Push("b")
	r.Push("c")
	if v, _ := r.Oldest(); v != "b" {
		t.Fatalf("Oldest=%q, want b", v)
	}
	if v, _ := r.Newest(); v != "c" {
		t.Fatalf("Newest=%q, want c", v)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	r := New[int](4)
	r.Push(1)
	r.Push(2)
	s := r.Snapshot()
	r.Push(3)
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Fatalf("snapshot mutated: %v", s)
	}
}

func TestDoEarlyStop(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 8; i++ {
		r.Push(i)
	}
	seen := 0
	r.Do(func(v int) bool {
		seen++
		return v < 3
	})
	// Visits v=0,1,2 (keep going), then v=3 returns false and stops: 4 visits.
	if seen != 4 {
		t.Fatalf("Do visited %d elements, want 4", seen)
	}
}

func TestSelectWindow(t *testing.T) {
	r := New[int](10)
	for i := 0; i < 10; i++ {
		r.Push(i)
	}
	got := r.Select(func(v int) bool { return v >= 3 && v <= 6 })
	want := []int{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("Select=%v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Select=%v, want %v", got, want)
		}
	}
}

func TestReset(t *testing.T) {
	r := New[int](3)
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len=%d after Reset", r.Len())
	}
	if r.Evicted() != 2 {
		t.Fatalf("Reset cleared eviction count: %d", r.Evicted())
	}
	r.Push(42)
	if v, _ := r.Oldest(); v != 42 {
		t.Fatalf("push after reset: %d", v)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	r := New[int](2)
	r.Push(1)
	for _, idx := range []int{-1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d) did not panic", idx)
				}
			}()
			r.At(idx)
		}()
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", c)
				}
			}()
			New[int](c)
		}()
	}
}

// Property: after any sequence of pushes into a ring of capacity c, the
// ring holds exactly the last min(n, c) values in push order.
func TestQuickRingHoldsSuffix(t *testing.T) {
	f := func(values []int, capRaw uint8) bool {
		c := int(capRaw%32) + 1
		r := New[int](c)
		for _, v := range values {
			r.Push(v)
		}
		n := len(values)
		wantLen := n
		if wantLen > c {
			wantLen = c
		}
		if r.Len() != wantLen {
			return false
		}
		for i := 0; i < wantLen; i++ {
			if r.At(i) != values[n-wantLen+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Evicted() always equals max(0, pushes - capacity).
func TestQuickEvictionCount(t *testing.T) {
	f := func(n uint16, capRaw uint8) bool {
		c := int(capRaw%64) + 1
		r := New[struct{}](c)
		for i := 0; i < int(n%2048); i++ {
			r.Push(struct{}{})
		}
		pushes := uint64(n % 2048)
		want := uint64(0)
		if pushes > uint64(c) {
			want = pushes - uint64(c)
		}
		return r.Evicted() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRangeMatchesSelect(t *testing.T) {
	key := func(v float64) float64 { return v }
	r := New[float64](64)
	// Wrapped ring: keys 36..99 survive, monotonic oldest-to-newest.
	for i := 0; i < 100; i++ {
		r.Push(float64(i))
	}
	cases := [][2]float64{
		{40, 50},     // interior window
		{0, 36},      // clipped at the oldest survivor
		{99, 200},    // clipped at the newest
		{-10, 1000},  // whole ring
		{50.5, 50.9}, // empty: between samples
		{200, 300},   // empty: past the end
		{0, 10},      // empty: fully evicted
	}
	for _, c := range cases {
		want := r.Select(func(v float64) bool { return v >= c[0] && v <= c[1] })
		got := r.SelectRange(c[0], c[1], key)
		if len(want) != len(got) {
			t.Fatalf("window [%v,%v]: Select %d elements, SelectRange %d", c[0], c[1], len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("window [%v,%v][%d]: %v vs %v", c[0], c[1], i, want[i], got[i])
			}
		}
	}
}

func TestSelectRangeEmptyRing(t *testing.T) {
	r := New[float64](8)
	if got := r.SelectRange(0, 100, func(v float64) float64 { return v }); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
}

// BenchmarkRingSelectRange pins the satellite win: a small time window
// selected out of a full 100k-sample ring by binary search versus the
// full-ring predicate scan the monitor used to do on every collect.
func BenchmarkRingSelectRange(b *testing.B) {
	const cap = 100_000
	key := func(v float64) float64 { return v }
	r := New[float64](cap)
	for i := 0; i < cap+cap/2; i++ { // wrapped, like a long-running agent
		r.Push(float64(i))
	}
	oldest, _ := r.Oldest()
	lo, hi := oldest+float64(cap)-32, oldest+float64(cap)-1 // 30-ish recent samples
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := r.Select(func(v float64) bool { return v >= lo && v <= hi })
			if len(out) == 0 {
				b.Fatal("empty window")
			}
		}
	})
	b.Run("binary-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := r.SelectRange(lo, hi, key)
			if len(out) == 0 {
				b.Fatal("empty window")
			}
		}
	})
}
