package ringbuf

import "testing"

// sample approximates the monitor's per-entry payload shape.
type sample struct {
	T    float64
	Vals [8]float64
}

// BenchmarkRingBufferPush measures the monitor node-agent's hot path: one
// push per sampling interval into the paper's 100,000-slot ring.
func BenchmarkRingBufferPush(b *testing.B) {
	r := New[sample](100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(sample{T: float64(i)})
	}
}

// BenchmarkRingBufferSelect measures the job-query path: scanning the
// full ring for a time window (worst case: client asks for a long job).
func BenchmarkRingBufferSelect(b *testing.B) {
	r := New[sample](100_000)
	for i := 0; i < 100_000; i++ {
		r.Push(sample{T: float64(i) * 2})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := r.Select(func(s sample) bool { return s.T >= 100_000 && s.T <= 150_000 })
		if len(got) == 0 {
			b.Fatal("empty selection")
		}
	}
}

func BenchmarkRingBufferSnapshot(b *testing.B) {
	r := New[sample](10_000)
	for i := 0; i < 10_000; i++ {
		r.Push(sample{T: float64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.Snapshot(); len(got) != 10_000 {
			b.Fatal("bad snapshot")
		}
	}
}
