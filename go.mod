module fluxpower

go 1.22
