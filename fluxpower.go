// Package fluxpower is the public API of the reproduction of
// "Vendor-neutral and Production-grade Job Power Management in High
// Performance Computing" (SC 2024).
//
// It assembles, behind one façade, everything the paper's system needs: a
// simulated cluster (Lassen- or Tioga-like nodes), a Flux-style resource
// manager (brokers on a tree-based overlay network, job manager, and a
// pluggable scheduling policy — FCFS baseline or power-aware dispatch
// against predicted per-job draw, see Config.SchedPolicy), the
// flux-power-monitor telemetry module, and the flux-power-manager with
// its static, proportional-sharing and FFT-based (FPP) power policies
// plus an optional closed-loop budget controller (Config.ClosedLoop)
// that retunes per-job caps from observed draw.
//
// Quickstart:
//
//	c, err := fluxpower.NewCluster(fluxpower.Config{
//		System: fluxpower.Lassen,
//		Nodes:  8,
//		Policy: fluxpower.PolicyProportional,
//		GlobalPowerCapW: 9600,
//	})
//	id, _ := c.Submit(fluxpower.JobSpec{App: "gemm", Nodes: 6})
//	c.RunUntilIdle(time.Hour)
//	report, _ := c.Report(id)
//	fmt.Printf("%s: %.0f s, %.0f W avg/node\n", report.App, report.ExecSec, report.AvgNodePowerW)
//
// Everything is deterministic: the same Config.Seed replays the same run.
package fluxpower

import (
	"errors"
	"fmt"
	"io"
	"time"

	"fluxpower/internal/apps"
	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermgr"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
	"fluxpower/internal/sched"
)

// System selects the modelled machine.
type System = cluster.System

// Supported systems.
const (
	// Lassen models IBM Power AC922 nodes: 2 sockets, 4 NVIDIA Volta
	// GPUs, full OCC telemetry, OPAL node capping and NVML GPU capping.
	Lassen = cluster.Lassen
	// Tioga models HPE Cray EX235a nodes: 1 AMD Trento socket, 4 MI250X
	// OAMs (8 GPUs), CPU/OAM-only telemetry, capping disabled for users.
	Tioga = cluster.Tioga
)

// Policy selects the power-management policy.
type Policy = powermgr.Policy

// Policies.
const (
	// PolicyNone runs unconstrained: no power manager capping.
	PolicyNone = powermgr.PolicyNone
	// PolicyStatic applies a fixed vendor node-level cap on every node
	// (the IBM-default baseline the paper compares against).
	PolicyStatic = powermgr.PolicyStatic
	// PolicyProportional shares the global power bound across jobs in
	// proportion to their node counts (§III-B1).
	PolicyProportional = powermgr.PolicyProportional
	// PolicyFPP adds the per-GPU FFT-based dynamic controller (§III-B2).
	PolicyFPP = powermgr.PolicyFPP
)

// Scheduling policies (Config.SchedPolicy). The policy decides which
// queued jobs start; regardless of policy, the dispatcher centrally
// refuses any admission whose predicted fleet draw would exceed
// Config.SchedBudgetW.
const (
	// SchedFCFS is strict first-come-first-served with no backfill —
	// the paper's baseline ("Flux schedules these jobs as any regular
	// resource manager would", §IV-E).
	SchedFCFS = sched.PolicyFCFS
	// SchedPowerAware admits jobs against predicted per-job power draw
	// (catalog signature prior corrected by observed telemetry) and
	// backfills smaller jobs past a head-of-line job that doesn't fit.
	SchedPowerAware = sched.PolicyPowerAware
)

// Closed-loop budget controller modes (Config.ClosedLoop).
const (
	// ClosedLoopOff disables the controller (default).
	ClosedLoopOff = powermgr.ControllerOff
	// ClosedLoopObserve counts cap violations without retuning.
	ClosedLoopObserve = powermgr.ControllerObserve
	// ClosedLoopRetune runs the full PI loop: reclaim slack from
	// under-cap jobs, grant it to throttled ones.
	ClosedLoopRetune = powermgr.ControllerRetune
)

// Applications lists the bundled application models (the paper's five
// workloads). Custom models can be added with RegisterApplication.
func Applications() []string { return apps.Names() }

// RegisterApplication installs a custom application power/performance
// profile into the catalog.
func RegisterApplication(p apps.Profile) error { return apps.Register(p) }

// Config describes the cluster to build.
type Config struct {
	// System selects the machine model. Default Lassen.
	System System
	// Nodes is the cluster size. Required.
	Nodes int
	// Policy selects the power policy. Default PolicyNone.
	Policy Policy
	// GlobalPowerCapW is the cluster-level bound for the dynamic
	// policies; 0 = unconstrained.
	GlobalPowerCapW float64
	// StaticNodeCapW is the per-node vendor cap for PolicyStatic.
	StaticNodeCapW float64
	// Monitor loads the flux-power-monitor on every node (default true;
	// set DisableMonitor to turn it off).
	DisableMonitor bool
	// MonitorSampleInterval overrides the 2 s default.
	MonitorSampleInterval time.Duration
	// MonitorBufferSamples overrides the 100,000-sample ring default.
	MonitorBufferSamples int
	// Seed drives every stochastic element. Same seed, same run.
	Seed int64
	// SensorNoiseW adds uniform measurement noise to power sensors.
	SensorNoiseW float64
	// Jitter enables run-to-run variability (OS noise, congestion).
	Jitter bool
	// GPUCapFailureProb injects silent NVML cap-write failures (§V).
	GPUCapFailureProb float64
	// SchedPolicy selects the job manager's dispatch policy (SchedFCFS
	// or SchedPowerAware). Empty = SchedFCFS.
	SchedPolicy string
	// SchedBudgetW is the power budget the dispatcher admits predicted
	// job draw against. 0 with SchedPowerAware uses GlobalPowerCapW, so
	// admission and enforcement share one bound; explicit 0 budget with
	// SchedFCFS means unlimited (the baseline).
	SchedBudgetW float64
	// ClosedLoop selects the budget controller mode (ClosedLoopOff,
	// ClosedLoopObserve, ClosedLoopRetune). Requires a dynamic power
	// policy (proportional or FPP).
	ClosedLoop string
}

// JobSpec describes a job submission.
type JobSpec struct {
	// Name is an optional label.
	Name string
	// App names an application model (see Applications).
	App string
	// Nodes is the requested node count.
	Nodes int
	// SizeFactor scales the problem size (0 = 1).
	SizeFactor float64
	// RepFactor scales the iteration count (0 = 1).
	RepFactor float64
	// PowerPolicy optionally overrides the cluster's power policy for
	// this job (user-level customization, §I): "proportional" or "fpp".
	// Empty uses the cluster default.
	PowerPolicy Policy
}

// JobID identifies a submitted job.
type JobID = uint64

// JobState is a job's lifecycle state.
type JobState = job.State

// Job states.
const (
	StateSched    = job.StateSched
	StateRun      = job.StateRun
	StateInactive = job.StateInactive
)

// JobReport combines scheduling metadata with ground-truth power/energy
// accounting for one job.
type JobReport struct {
	ID    JobID
	Name  string
	App   string
	Nodes int
	State JobState

	SubmitSec float64
	StartSec  float64
	EndSec    float64
	// ExecSec is the execution time; 0 while running.
	ExecSec float64
	// QueueWaitSec is the time spent queued before nodes were granted
	// (0 while still queued).
	QueueWaitSec float64
	// PredNodeW is the per-node power the dispatcher predicted for this
	// job when it considered it for admission (0 if never considered).
	PredNodeW float64

	// AvgNodePowerW / MaxNodePowerW / EnergyPerNodeJ are the measured
	// per-node figures (conservative CPU+GPU estimate on Tioga).
	AvgNodePowerW  float64
	MaxNodePowerW  float64
	EnergyPerNodeJ float64
}

// Cluster is a running simulated system with the power modules loaded.
type Cluster struct {
	cfg Config
	c   *cluster.Cluster
	mon *powermon.Client
	pm  *powermgr.Client
}

// NewCluster builds and boots the cluster: nodes, the Flux instance, the
// job manager, and (per Config) the monitor and manager modules.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.System == "" {
		cfg.System = Lassen
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyNone
	}
	if cfg.Policy == PolicyStatic && cfg.StaticNodeCapW <= 0 {
		return nil, errors.New("fluxpower: PolicyStatic requires StaticNodeCapW")
	}
	if _, err := sched.New(cfg.SchedPolicy); err != nil {
		return nil, fmt.Errorf("fluxpower: %w", err)
	}
	if cfg.SchedPolicy == SchedPowerAware && cfg.SchedBudgetW == 0 {
		cfg.SchedBudgetW = cfg.GlobalPowerCapW
	}
	if cfg.ClosedLoop != ClosedLoopOff &&
		cfg.Policy != PolicyProportional && cfg.Policy != PolicyFPP {
		return nil, errors.New("fluxpower: ClosedLoop requires PolicyProportional or PolicyFPP")
	}
	inner, err := cluster.New(cluster.Config{
		System:              cfg.System,
		Nodes:               cfg.Nodes,
		Seed:                cfg.Seed,
		SensorNoiseW:        cfg.SensorNoiseW,
		Jitter:              cfg.Jitter,
		GPUCapFailureProb:   cfg.GPUCapFailureProb,
		MonitorOverheadFrac: -1, // per-system default (§IV-B)
		SchedPolicy:         cfg.SchedPolicy,
		SchedBudgetW:        cfg.SchedBudgetW,
	})
	if err != nil {
		return nil, err
	}
	fc := &Cluster{cfg: cfg, c: inner}
	if !cfg.DisableMonitor {
		monCfg := powermon.Config{
			SampleInterval: cfg.MonitorSampleInterval,
			BufferSamples:  cfg.MonitorBufferSamples,
		}
		if err := inner.Inst.LoadModuleAll(func(rank int32) broker.Module {
			return powermon.New(monCfg)
		}); err != nil {
			return nil, err
		}
		fc.mon = powermon.NewClient(inner.Inst.Root())
	}
	if cfg.Policy != PolicyNone {
		mcfg := powermgr.Config{
			Policy:         cfg.Policy,
			GlobalCapW:     cfg.GlobalPowerCapW,
			StaticNodeCapW: cfg.StaticNodeCapW,
			Controller:     powermgr.ControllerConfig{Mode: cfg.ClosedLoop},
		}
		if err := inner.Inst.LoadModuleAll(func(rank int32) broker.Module {
			return powermgr.New(mcfg)
		}); err != nil {
			return nil, err
		}
		fc.pm = powermgr.NewClient(inner.Inst.Root())
	}
	return fc, nil
}

// Close stops the cluster's tick engine.
func (fc *Cluster) Close() { fc.c.Close() }

// Submit queues a job.
func (fc *Cluster) Submit(spec JobSpec) (JobID, error) {
	return fc.c.Submit(job.Spec{
		Name:        spec.Name,
		App:         spec.App,
		Nodes:       spec.Nodes,
		SizeFactor:  spec.SizeFactor,
		RepFactor:   spec.RepFactor,
		PowerPolicy: string(spec.PowerPolicy),
	})
}

// Run advances simulated time by d.
func (fc *Cluster) Run(d time.Duration) { fc.c.RunFor(d) }

// RunUntilIdle advances until all jobs have finished or limit elapses,
// reporting whether the system drained.
func (fc *Cluster) RunUntilIdle(limit time.Duration) bool {
	_, idle := fc.c.RunUntilIdle(limit)
	return idle
}

// NowSec returns the current simulated time in seconds.
func (fc *Cluster) NowSec() float64 { return fc.c.Now().Seconds() }

// Report returns a job's scheduling and power accounting.
func (fc *Cluster) Report(id JobID) (JobReport, error) {
	rec, err := fc.c.JM.Info(id)
	if err != nil {
		return JobReport{}, err
	}
	rep := JobReport{
		ID:           rec.ID,
		Name:         rec.Spec.Name,
		App:          rec.Spec.App,
		Nodes:        rec.Spec.Nodes,
		State:        rec.State,
		SubmitSec:    rec.SubmitSec,
		StartSec:     rec.StartSec,
		EndSec:       rec.EndSec,
		QueueWaitSec: rec.QueueWaitSec,
		PredNodeW:    rec.PredNodeW,
	}
	if st, ok := fc.c.Stats(id); ok {
		rep.ExecSec = st.ExecSec()
		rep.AvgNodePowerW = st.AvgNodePowerW
		rep.MaxNodePowerW = st.MaxNodePowerW
		rep.EnergyPerNodeJ = st.EnergyPerNodeJ
	}
	return rep, nil
}

// JobPower fetches a job's telemetry through the flux-power-monitor
// pipeline (root-agent aggregation over the TBON).
func (fc *Cluster) JobPower(id JobID) (powermon.JobPower, error) {
	if fc.mon == nil {
		return powermon.JobPower{}, errors.New("fluxpower: monitor not loaded")
	}
	return fc.mon.Query(id)
}

// JobPowerSummary reduces a job's telemetry to the per-job figures the
// paper's tables report.
func (fc *Cluster) JobPowerSummary(id JobID) (powermon.Summary, error) {
	jp, err := fc.JobPower(id)
	if err != nil {
		return powermon.Summary{}, err
	}
	return powermon.Summarize(jp)
}

// WriteJobCSV writes the job's power telemetry in the monitor client's
// CSV format (one row per node sample, completeness column included).
func (fc *Cluster) WriteJobCSV(w io.Writer, id JobID) error {
	jp, err := fc.JobPower(id)
	if err != nil {
		return err
	}
	return powermon.WriteCSV(w, jp)
}

// PowerAllocation is one job's current power grant under a dynamic policy.
type PowerAllocation struct {
	JobID    JobID
	Ranks    []int32
	PerNodeW float64
	JobW     float64
}

// PowerStatus reports the cluster-level manager's allocation table.
func (fc *Cluster) PowerStatus() (policy Policy, globalCapW float64, allocs []PowerAllocation, err error) {
	if fc.pm == nil {
		return PolicyNone, 0, nil, nil
	}
	p, g, as, err := fc.pm.Status()
	if err != nil {
		return "", 0, nil, err
	}
	out := make([]PowerAllocation, 0, len(as))
	for _, a := range as {
		out = append(out, PowerAllocation{
			JobID: a.JobID, Ranks: a.Ranks, PerNodeW: a.PerNodeW, JobW: a.JobLimitW,
		})
	}
	return p, g, out, nil
}

// SchedStatus is the dispatcher's status: active policy, budget
// accounting, predictor state, and queue-wait statistics.
type SchedStatus = job.SchedStatus

// SchedStatus reports the job manager's dispatcher state.
func (fc *Cluster) SchedStatus() (SchedStatus, error) {
	return fc.c.JM.Sched()
}

// ControllerStatus is the closed-loop budget controller's status:
// observation rounds, retunes, per-job cap history and cap-violation
// counters.
type ControllerStatus = powermgr.ControllerStatus

// ControllerStatus reports the closed-loop controller's state. Without a
// power manager loaded it returns the zero status.
func (fc *Cluster) ControllerStatus() (ControllerStatus, error) {
	if fc.pm == nil {
		return ControllerStatus{}, nil
	}
	return fc.pm.Controller()
}

// SetGlobalPowerCap changes the cluster power bound at runtime (dynamic
// policies re-distribute immediately).
func (fc *Cluster) SetGlobalPowerCap(watts float64) error {
	if fc.pm == nil {
		return errors.New("fluxpower: no power manager loaded")
	}
	return fc.pm.SetGlobalCap(watts)
}

// TotalPowerW returns the instantaneous measured cluster power (all
// nodes, running and idle).
func (fc *Cluster) TotalPowerW() float64 { return fc.c.TotalPowerW() }

// NodePower describes one node's current caps and draw.
type NodePower struct {
	Rank     int32
	PowerW   float64
	NodeCapW float64 // 0 = uncapped
	GPUCapsW []float64
	LimitW   float64 // manager-assigned node-level limit, 0 = none
}

// NodeStatus inspects a node's power state.
func (fc *Cluster) NodeStatus(rank int32) (NodePower, error) {
	if rank < 0 || int(rank) >= fc.c.NodeCount() {
		return NodePower{}, fmt.Errorf("fluxpower: rank %d of %d", rank, fc.c.NodeCount())
	}
	n := fc.c.Node(rank)
	np := NodePower{
		Rank:     rank,
		PowerW:   n.Actual().NodeW,
		NodeCapW: n.NodeCap(),
	}
	for g := 0; g < n.Config().GPUs; g++ {
		np.GPUCapsW = append(np.GPUCapsW, n.EffectiveGPUCap(g))
	}
	if fc.pm != nil {
		if info, err := fc.pm.NodeInfo(rank); err == nil {
			if v, ok := info["limit_w"].(float64); ok {
				np.LimitW = v
			}
		}
	}
	return np, nil
}

// Jobs lists all job records, oldest first.
func (fc *Cluster) Jobs() ([]JobReport, error) {
	recs, err := fc.c.JM.List()
	if err != nil {
		return nil, err
	}
	out := make([]JobReport, 0, len(recs))
	for _, rec := range recs {
		rep, err := fc.Report(rec.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
