package fluxpower

import (
	"errors"

	"fluxpower/internal/cluster"
	"fluxpower/internal/core/powermgr"
	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/flux/job"
)

// Allocation is a user-level Flux instance running inside the system
// instance — the paper's hierarchical model (§II-B): "When a user
// requests a job, they are allocated their own user-level Flux instance,
// allowing them to customize the scheduling policy within their
// instance." The user submits their own jobs into the allocation and may
// load their own power manager with their own budget and policy, without
// any privilege on the system instance.
type Allocation struct {
	fc *Cluster
	si *cluster.SubInstance
	pm *powermgr.Client
}

// SpawnAllocation requests nodes from the system instance and boots a
// user-level Flux instance on them with the default FCFS scheduling
// policy. The nodes must be free now (an allocation cannot boot brokers
// on nodes it does not hold). Use SpawnAllocationPolicy to pick a
// different scheduling policy for the allocation.
func (fc *Cluster) SpawnAllocation(name string, nodes int) (*Allocation, error) {
	return fc.SpawnAllocationPolicy(name, nodes, SchedFCFS, 0)
}

// SpawnAllocationPolicy boots an allocation whose own job manager runs
// the named scheduling policy (SchedFCFS, SchedPowerAware, or any name
// registered with the sched package) against the given power budget in
// watts. This is the paper's §I claim in API form: "different users can
// choose different power-aware scheduling policies within their
// respective allocations" — the policy and budget govern only the
// allocation's nested job manager, not the system instance. A zero
// budget means node-count admission only.
func (fc *Cluster) SpawnAllocationPolicy(name string, nodes int, policy string, budgetW float64) (*Allocation, error) {
	si, err := fc.c.SpawnSubInstanceWith(
		job.Spec{Name: name, Nodes: nodes},
		job.Options{Policy: policy, BudgetW: budgetW},
	)
	if err != nil {
		return nil, err
	}
	return &Allocation{fc: fc, si: si}, nil
}

// ID returns the system-instance job that holds this allocation.
func (a *Allocation) ID() JobID { return a.si.JobID }

// Ranks returns the system ranks backing the allocation.
func (a *Allocation) Ranks() []int32 { return a.si.Ranks() }

// LoadPowerManager installs the user's own flux-power-manager inside the
// allocation: their policy, their budget, enforced only on their nodes.
func (a *Allocation) LoadPowerManager(policy Policy, budgetW float64) error {
	cfg := powermgr.Config{Policy: policy, GlobalCapW: budgetW}
	if policy == PolicyStatic {
		return errors.New("fluxpower: static capping is a system-instance concern; use proportional or fpp")
	}
	if err := a.si.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return powermgr.New(cfg)
	}); err != nil {
		return err
	}
	a.pm = powermgr.NewClient(a.si.Inst.Root())
	return nil
}

// LoadPowerMonitor installs a user-level flux-power-monitor inside the
// allocation (user-level telemetry, independent of the system monitor).
func (a *Allocation) LoadPowerMonitor(cfg powermon.Config) error {
	return a.si.Inst.LoadModuleAll(func(rank int32) broker.Module {
		return powermon.New(cfg)
	})
}

// Submit queues a job inside the allocation. The allocation's own job
// manager schedules it over the allocation's nodes using whatever
// sched.Policy the allocation was spawned with — FCFS by default, or
// the policy given to SpawnAllocationPolicy.
func (a *Allocation) Submit(spec JobSpec) (JobID, error) {
	return a.si.Submit(job.Spec{
		Name:        spec.Name,
		App:         spec.App,
		Nodes:       spec.Nodes,
		SizeFactor:  spec.SizeFactor,
		RepFactor:   spec.RepFactor,
		PowerPolicy: string(spec.PowerPolicy),
	})
}

// Report returns a sub-job's record and power accounting.
func (a *Allocation) Report(id JobID) (JobReport, error) {
	rec, err := a.si.JM.Info(id)
	if err != nil {
		return JobReport{}, err
	}
	rep := JobReport{
		ID:        rec.ID,
		Name:      rec.Spec.Name,
		App:       rec.Spec.App,
		Nodes:     rec.Spec.Nodes,
		State:     rec.State,
		SubmitSec: rec.SubmitSec,
		StartSec:  rec.StartSec,
		EndSec:    rec.EndSec,
	}
	if st, ok := a.si.Stats(id); ok {
		rep.ExecSec = st.ExecSec()
		rep.AvgNodePowerW = st.AvgNodePowerW
		rep.MaxNodePowerW = st.MaxNodePowerW
		rep.EnergyPerNodeJ = st.EnergyPerNodeJ
	}
	return rep, nil
}

// PowerStatus reports the user manager's allocation table (nil manager =
// empty).
func (a *Allocation) PowerStatus() (Policy, float64, []PowerAllocation, error) {
	if a.pm == nil {
		return PolicyNone, 0, nil, nil
	}
	p, g, as, err := a.pm.Status()
	if err != nil {
		return "", 0, nil, err
	}
	out := make([]PowerAllocation, 0, len(as))
	for _, al := range as {
		out = append(out, PowerAllocation{
			JobID: al.JobID, Ranks: al.Ranks, PerNodeW: al.PerNodeW, JobW: al.JobLimitW,
		})
	}
	return p, g, out, nil
}

// Idle reports whether the allocation has no running or queued jobs.
func (a *Allocation) Idle() bool { return a.si.Idle() }

// Close releases the allocation back to the system instance.
func (a *Allocation) Close() error { return a.si.Close() }
