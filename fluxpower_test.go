package fluxpower

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"fluxpower/internal/core/powermon"
)

func TestQuickstartFlow(t *testing.T) {
	c, err := NewCluster(Config{System: Lassen, Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Submit(JobSpec{App: "laghos", Nodes: 4, Name: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.RunUntilIdle(time.Minute) {
		t.Fatal("job never finished")
	}
	rep, err := c.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != StateInactive || rep.App != "laghos" || rep.Name != "demo" {
		t.Fatalf("report: %+v", rep)
	}
	if math.Abs(rep.ExecSec-12.55) > 0.5 {
		t.Fatalf("exec %.2f s, want ~12.55", rep.ExecSec)
	}
	if rep.AvgNodePowerW < 440 || rep.AvgNodePowerW > 510 {
		t.Fatalf("avg power %.0f W", rep.AvgNodePowerW)
	}
	sum, err := c.JobPowerSummary(id)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Complete {
		t.Fatal("telemetry incomplete")
	}
	var buf bytes.Buffer
	if err := c.WriteJobCSV(&buf, id); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "jobid,") {
		t.Fatalf("CSV header: %q", buf.String()[:40])
	}
}

func TestPolicyConfiguration(t *testing.T) {
	if _, err := NewCluster(Config{Nodes: 2, Policy: PolicyStatic}); err == nil {
		t.Fatal("static policy without cap accepted")
	}
	if _, err := NewCluster(Config{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	c, err := NewCluster(Config{
		Nodes:           8,
		Policy:          PolicyProportional,
		GlobalPowerCapW: 9600,
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(JobSpec{App: "gemm", Nodes: 6}); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Second)
	policy, global, allocs, err := c.PowerStatus()
	if err != nil {
		t.Fatal(err)
	}
	if policy != PolicyProportional || global != 9600 {
		t.Fatalf("status: %v %v", policy, global)
	}
	if len(allocs) != 1 || allocs[0].PerNodeW != 1600 || allocs[0].JobW != 9600 {
		t.Fatalf("allocations: %+v", allocs)
	}
	ns, err := c.NodeStatus(0)
	if err != nil {
		t.Fatal(err)
	}
	if ns.LimitW != 1600 || ns.NodeCapW != 1950 {
		t.Fatalf("node status: %+v", ns)
	}
	if _, err := c.NodeStatus(99); err == nil {
		t.Fatal("bad rank accepted")
	}
	if err := c.SetGlobalPowerCap(4800); err != nil {
		t.Fatal(err)
	}
	_, global, _, _ = c.PowerStatus()
	if global != 4800 {
		t.Fatalf("global cap after change: %v", global)
	}
}

func TestMonitorDisabled(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 2, DisableMonitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Submit(JobSpec{App: "laghos", Nodes: 1})
	c.RunUntilIdle(time.Minute)
	if _, err := c.JobPower(id); err == nil {
		t.Fatal("JobPower without monitor succeeded")
	}
	if err := c.SetGlobalPowerCap(1000); err == nil {
		t.Fatal("SetGlobalPowerCap without manager succeeded")
	}
	// PowerStatus degrades gracefully.
	policy, _, allocs, err := c.PowerStatus()
	if err != nil || policy != PolicyNone || allocs != nil {
		t.Fatalf("PowerStatus: %v %v %v", policy, allocs, err)
	}
}

func TestJobsListing(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(JobSpec{App: "laghos", Nodes: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if !c.RunUntilIdle(5 * time.Minute) {
		t.Fatal("queue never drained")
	}
	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("%d jobs listed", len(jobs))
	}
	for _, j := range jobs {
		if j.State != StateInactive || j.EnergyPerNodeJ <= 0 {
			t.Fatalf("job record: %+v", j)
		}
	}
	if c.NowSec() <= 0 {
		t.Fatal("time did not advance")
	}
}

func TestApplicationsCatalog(t *testing.T) {
	names := Applications()
	if len(names) != 7 {
		t.Fatalf("catalog: %v", names)
	}
	c, err := NewCluster(Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Submit(JobSpec{App: "not-an-app", Nodes: 1})
	c.Run(time.Second)
	rep, err := c.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != StateInactive {
		t.Fatalf("unknown app state: %v", rep.State)
	}
}

func TestTiogaFacade(t *testing.T) {
	c, err := NewCluster(Config{System: Tioga, Nodes: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Submit(JobSpec{App: "lammps", Nodes: 2})
	if !c.RunUntilIdle(5 * time.Minute) {
		t.Fatal("job never finished")
	}
	sum, err := c.JobPowerSummary(id)
	if err != nil {
		t.Fatal(err)
	}
	if sum.AvgMemW != -1 {
		t.Fatalf("Tioga memory power: %v", sum.AvgMemW)
	}
}

func TestPerJobPolicyViaFacade(t *testing.T) {
	c, err := NewCluster(Config{
		Nodes:           8,
		Policy:          PolicyProportional,
		GlobalPowerCapW: 9600,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _ = c.Submit(JobSpec{App: "gemm", Nodes: 6, RepFactor: 2})
	_, _ = c.Submit(JobSpec{App: "quicksilver", Nodes: 2, SizeFactor: 27.2, PowerPolicy: PolicyFPP})
	c.Run(5 * time.Second)
	_, _, allocs, err := c.PowerStatus()
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatalf("allocations: %+v", allocs)
	}
	// Both jobs share the bound regardless of their individual policies.
	for _, a := range allocs {
		if a.PerNodeW != 1200 {
			t.Fatalf("allocation: %+v", a)
		}
	}
}

func TestAllocationUserLevelInstance(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	alloc, err := c.SpawnAllocation("research-alloc", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Ranks()) != 4 {
		t.Fatalf("allocation ranks: %v", alloc.Ranks())
	}
	// The user loads their own manager with their own budget.
	if err := alloc.LoadPowerManager(PolicyProportional, 4*1200); err != nil {
		t.Fatal(err)
	}
	if err := alloc.LoadPowerManager(PolicyStatic, 0); err == nil {
		t.Fatal("static policy accepted inside an allocation")
	}
	id, err := alloc.Submit(JobSpec{App: "gemm", Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second)
	policy, budget, allocs, err := alloc.PowerStatus()
	if err != nil {
		t.Fatal(err)
	}
	if policy != PolicyProportional || budget != 4800 || len(allocs) != 1 {
		t.Fatalf("user manager status: %v %v %+v", policy, budget, allocs)
	}
	if allocs[0].PerNodeW != 1200 {
		t.Fatalf("user allocation: %+v", allocs[0])
	}
	// Run the user's job to completion and read its report.
	c.Run(10 * time.Minute)
	if !alloc.Idle() {
		t.Fatal("allocation not idle")
	}
	rep, err := alloc.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != StateInactive || rep.ExecSec <= 0 || rep.EnergyPerNodeJ <= 0 {
		t.Fatalf("sub-job report: %+v", rep)
	}
	if err := alloc.Close(); err != nil {
		t.Fatal(err)
	}
	// The system instance sees the allocation job as inactive.
	sys, err := c.Report(alloc.ID())
	if err != nil || sys.State != StateInactive {
		t.Fatalf("system view after close: %+v err=%v", sys, err)
	}
}

func TestAllocationUserLevelMonitor(t *testing.T) {
	// A user loads their own telemetry monitor inside the allocation —
	// user-level telemetry independent of the system instance's.
	c, err := NewCluster(Config{Nodes: 4, Seed: 8, DisableMonitor: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	alloc, err := c.SpawnAllocation("telemetry-alloc", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.LoadPowerMonitor(powermon.Config{}); err != nil {
		t.Fatal(err)
	}
	id, err := alloc.Submit(JobSpec{App: "quicksilver", Nodes: 2, SizeFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Minute)
	rep, err := alloc.Report(id)
	if err != nil || rep.State != StateInactive {
		t.Fatalf("sub-job: %+v err=%v", rep, err)
	}
	// The user queries their own monitor through their own instance.
	mon := powermon.NewClient(alloc.si.Inst.Root())
	jp, err := mon.Query(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(jp.Nodes) != 2 || !jp.Complete() {
		t.Fatalf("user-level telemetry: %d nodes complete=%v", len(jp.Nodes), jp.Complete())
	}
	if err := alloc.Close(); err != nil {
		t.Fatal(err)
	}
}
