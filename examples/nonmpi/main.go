// Nonmpi: the paper's §IV-F demonstration — job power management applies
// to anything launched under a Flux job, MPI or not. A Charm++ NQueens
// solver (CPU-only) enters a cluster where GEMM holds 6 of 8 nodes; the
// proportional policy redistributes power and GEMM's draw visibly drops,
// then recovers when NQueens finishes (Figure 7).
package main

import (
	"fmt"
	"log"
	"time"

	"fluxpower"
)

func main() {
	c, err := fluxpower.NewCluster(fluxpower.Config{
		System:          fluxpower.Lassen,
		Nodes:           8,
		Policy:          fluxpower.PolicyProportional,
		GlobalPowerCapW: 9600,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	gemm, err := c.Submit(fluxpower.JobSpec{Name: "gemm", App: "gemm", Nodes: 6, RepFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	// GEMM runs alone for two minutes at 9600/6 = 1600 W per node...
	c.Run(120 * time.Second)
	before, _ := c.NodeStatus(0)

	// ...then the Charm++ job enters: everyone redistributes to 1200 W.
	nq, err := c.Submit(fluxpower.JobSpec{Name: "nqueens", App: "nqueens", Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	c.Run(30 * time.Second)
	during, _ := c.NodeStatus(0)

	fmt.Printf("GEMM node 0: %.0f W alone -> %.0f W while NQueens shares the bound\n",
		before.PowerW, during.PowerW)
	fmt.Printf("node limit: %.0f W -> %.0f W; effective GPU caps %v -> %v\n",
		before.LimitW, during.LimitW, before.GPUCapsW, during.GPUCapsW)

	if !c.RunUntilIdle(2 * time.Hour) {
		log.Fatal("jobs did not drain")
	}
	for _, id := range []fluxpower.JobID{gemm, nq} {
		rep, err := c.Report(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s (%d nodes): %.1f s, %.1f kJ/node\n",
			rep.Name, rep.Nodes, rep.ExecSec, rep.EnergyPerNodeJ/1000)
	}

	// NQueens never used the GPUs: capping was enforced but harmless.
	sum, err := c.JobPowerSummary(nq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nqueens avg GPU power: %.0f W (idle floor — CPU-only Charm++ job)\n", sum.AvgGPUW)
}
