// Livemode: the same broker and power-monitor code that drives the
// deterministic simulation, deployed as live daemons — brokers connected
// over real TCP sockets, node-agents sampling on wall-clock timers. This
// is the shape of the paper's production deployment (one flux-broker per
// node); here five "nodes" live in one process for the demo.
//
// Note: this example exercises the substrate API (internal/flux/broker)
// rather than the fluxpower facade, because live mode manages real
// hardware rather than simulated applications.
package main

import (
	"fmt"
	"log"
	"time"

	"fluxpower/internal/core/powermon"
	"fluxpower/internal/flux/broker"
	"fluxpower/internal/hw"
)

func main() {
	// Five Lassen-like nodes with different static loads, as if five
	// different applications were running.
	nodes := make([]*hw.Node, 5)
	for i := range nodes {
		n, err := hw.NewNode(fmt.Sprintf("node%d", i), hw.LassenConfig(), int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		gpu := 100 + float64(i)*50 // 100..300 W per GPU
		n.SetDemand(hw.Demand{
			CPUW: []float64{120, 120},
			MemW: 80,
			GPUW: []float64{gpu, gpu, gpu, gpu},
		})
		nodes[i] = n
	}

	// A live TBON: TCP links, wall-clock timers.
	li, err := broker.NewLiveInstance(broker.InstanceOptions{
		Size:  5,
		Local: func(rank int32) any { return nodes[rank] },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer li.Close()

	// The unmodified flux-power-monitor module, sampling every 50 ms of
	// real time.
	if err := li.LoadModuleAll(func(rank int32) broker.Module {
		return powermon.New(powermon.Config{SampleInterval: 50 * time.Millisecond})
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("live TBON up: 5 brokers over TCP, sampling every 50 ms")
	time.Sleep(500 * time.Millisecond)

	// Collect each node's telemetry over the tree, like the root-agent
	// does for a job query.
	for rank := int32(0); rank < 5; rank++ {
		resp, err := broker.CallWait(li.Root(), rank, "power-monitor.collect",
			map[string]float64{"start_sec": 0, "end_sec": 3600}, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		var ns powermon.NodeSamples
		if err := resp.Unmarshal(&ns); err != nil {
			log.Fatal(err)
		}
		last := ns.Samples[len(ns.Samples)-1]
		fmt.Printf("rank %d (%s): %2d samples, latest %6.0f W node, %5.0f W gpu\n",
			rank, ns.Hostname, len(ns.Samples), last.TotalWatts(), last.TotalGPUWatts())
	}
}
