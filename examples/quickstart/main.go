// Quickstart: boot a 4-node Lassen-like cluster with the
// flux-power-monitor loaded, run one job, and read its power telemetry —
// the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"fluxpower"
)

func main() {
	// A 4-node IBM AC922 ("Lassen") cluster. The power monitor is loaded
	// on every node by default, sampling Variorum telemetry every 2 s.
	c, err := fluxpower.NewCluster(fluxpower.Config{
		System: fluxpower.Lassen,
		Nodes:  4,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Run Quicksilver — the paper's periodic Monte Carlo workload — on
	// all four nodes with a 10x problem size.
	id, err := c.Submit(fluxpower.JobSpec{
		Name:       "qs-demo",
		App:        "quicksilver",
		Nodes:      4,
		SizeFactor: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Advance simulated time until the job completes.
	if !c.RunUntilIdle(time.Hour) {
		log.Fatal("job did not finish")
	}

	// Ground-truth accounting from the cluster engine...
	rep, err := c.Report(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.1f s on %d nodes, avg %.0f W/node, %.1f kJ/node\n",
		rep.Name, rep.ExecSec, rep.Nodes, rep.AvgNodePowerW, rep.EnergyPerNodeJ/1000)

	// ...and the monitor's view, aggregated over the TBON by the
	// root-agent, exactly as the paper's client script receives it.
	sum, err := c.JobPowerSummary(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitor: avg %.0f W/node (cpu %.0f, mem %.0f, gpu %.0f), complete=%v\n",
		sum.AvgNodePowerW, sum.AvgCPUW, sum.AvgMemW, sum.AvgGPUW, sum.Complete)

	// The per-sample CSV (one row per node sample):
	fmt.Println("\nCSV (first rows):")
	if err := c.WriteJobCSV(os.Stdout, id); err != nil {
		log.Fatal(err)
	}
}
