// Jobqueue: the paper's §IV-E scenario — a 10-job queue (Laghos,
// Quicksilver, LAMMPS, GEMM at 1-8 nodes each) on a power-constrained
// 16-node allocation, run under proportional sharing and under FPP, then
// compared on makespan and per-job energy.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fluxpower"
)

// jobMix mirrors the paper's random mix: 3 Laghos, 2 Quicksilver, 3
// LAMMPS, 2 GEMM, each requesting 1-8 nodes.
func jobMix(seed int64) []fluxpower.JobSpec {
	specs := []fluxpower.JobSpec{
		{App: "laghos", SizeFactor: 10}, {App: "laghos", SizeFactor: 10}, {App: "laghos", SizeFactor: 10},
		{App: "quicksilver", SizeFactor: 10}, {App: "quicksilver", SizeFactor: 10},
		{App: "lammps", RepFactor: 2}, {App: "lammps", RepFactor: 2}, {App: "lammps", RepFactor: 2},
		{App: "gemm"}, {App: "gemm"},
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range specs {
		specs[i].Nodes = 1 + rng.Intn(8)
		specs[i].Name = fmt.Sprintf("%s-%d", specs[i].App, i)
	}
	rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })
	return specs
}

func runQueue(policy fluxpower.Policy, seed int64) (makespan float64, avgEnergyKJ float64) {
	c, err := fluxpower.NewCluster(fluxpower.Config{
		System:          fluxpower.Lassen,
		Nodes:           16,
		Policy:          policy,
		GlobalPowerCapW: 16 * 1200,
		Seed:            seed,
		SensorNoiseW:    8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	specs := jobMix(seed)
	ids := make([]fluxpower.JobID, 0, len(specs))
	for _, s := range specs {
		id, err := c.Submit(s)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	if !c.RunUntilIdle(6 * time.Hour) {
		log.Fatal("queue did not drain")
	}
	var lastEnd, totalEnergy float64
	fmt.Printf("\n  %-16s %5s %8s %9s\n", "job", "nodes", "exec_s", "kJ/node")
	for _, id := range ids {
		rep, err := c.Report(id)
		if err != nil {
			log.Fatal(err)
		}
		if rep.EndSec > lastEnd {
			lastEnd = rep.EndSec
		}
		totalEnergy += rep.EnergyPerNodeJ / 1000
		fmt.Printf("  %-16s %5d %8.1f %9.1f\n", rep.Name, rep.Nodes, rep.ExecSec, rep.EnergyPerNodeJ/1000)
	}
	return lastEnd, totalEnergy / float64(len(ids))
}

func main() {
	const seed = 20240601
	fmt.Println("=== proportional sharing ===")
	mkProp, eProp := runQueue(fluxpower.PolicyProportional, seed)
	fmt.Println("\n=== FPP ===")
	mkFPP, eFPP := runQueue(fluxpower.PolicyFPP, seed)

	fmt.Printf("\nmakespan: proportional %.0f s, fpp %.0f s (paper: identical)\n", mkProp, mkFPP)
	fmt.Printf("avg energy/node/job: proportional %.2f kJ, fpp %.2f kJ (%.2f%% change)\n",
		eProp, eFPP, (eFPP-eProp)/eProp*100)
}
