// Usertier: the hierarchical, user-level customization the paper's
// framework inherits from Flux (§I, §II-B). The system instance runs no
// power manager at all. A user requests a 4-node allocation — which
// becomes their own nested Flux instance — loads their own
// proportional-sharing power manager with their own 4.8 kW budget, and
// runs their own job queue inside it. Power capping happens only on the
// user's nodes, under the user's policy, with no system privileges.
package main

import (
	"fmt"
	"log"
	"time"

	"fluxpower"
)

func main() {
	// System instance: 8 nodes, no power management configured at all.
	sys, err := fluxpower.NewCluster(fluxpower.Config{
		System: fluxpower.Lassen,
		Nodes:  8,
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The user requests 4 nodes; the job becomes a nested Flux instance.
	alloc, err := sys.SpawnAllocation("user-research", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocation %d holds system ranks %v\n", alloc.ID(), alloc.Ranks())

	// The user's own power manager: proportional sharing, 4.8 kW budget.
	if err := alloc.LoadPowerManager(fluxpower.PolicyProportional, 4*1200); err != nil {
		log.Fatal(err)
	}

	// The user's own queue: two jobs, FCFS inside the allocation.
	gemm, _ := alloc.Submit(fluxpower.JobSpec{Name: "my-gemm", App: "gemm", Nodes: 4})
	qs, _ := alloc.Submit(fluxpower.JobSpec{Name: "my-qs", App: "quicksilver", Nodes: 4, SizeFactor: 10})

	sys.Run(5 * time.Second)
	policy, budget, grants, _ := alloc.PowerStatus()
	fmt.Printf("user policy=%s budget=%.0fW grants=%d\n", policy, budget, len(grants))
	for _, g := range grants {
		fmt.Printf("  sub-job %d: %.0f W/node across %d nodes\n", g.JobID, g.PerNodeW, len(g.Ranks))
	}
	// User-level caps are live on the user's nodes only.
	inAlloc, _ := sys.NodeStatus(alloc.Ranks()[0])
	outside, _ := sys.NodeStatus(7)
	fmt.Printf("gpu caps inside allocation: %v; outside: %v\n", inAlloc.GPUCapsW, outside.GPUCapsW)

	// Drain the user's queue, then release the allocation.
	for !alloc.Idle() {
		sys.Run(time.Minute)
	}
	for _, id := range []fluxpower.JobID{gemm, qs} {
		rep, err := alloc.Report(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %7.1f s  %6.0f W avg/node  %6.1f kJ/node\n",
			rep.Name, rep.ExecSec, rep.AvgNodePowerW, rep.EnergyPerNodeJ/1000)
	}
	if err := alloc.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("allocation released; system nodes uncapped again")
}
