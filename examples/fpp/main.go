// FPP: the paper's Table IV head-to-head — the GEMM + Quicksilver
// scenario on a power-constrained 8-node allocation, run under every
// policy (unconstrained, IBM-default static, static-1950, proportional,
// FPP), reproducing the orderings: the IBM default is both slowest and
// most energy-hungry; the dynamic policies reclaim power when a job
// finishes and save ~20% energy with a large speedup.
package main

import (
	"fmt"
	"log"
	"time"

	"fluxpower"
)

type scenario struct {
	name    string
	policy  fluxpower.Policy
	nodeCap float64 // static policies
	bound   float64 // dynamic policies
}

func main() {
	scenarios := []scenario{
		{"unconstrained", fluxpower.PolicyNone, 0, 0},
		{"ibm-default-1200", fluxpower.PolicyStatic, 1200, 0},
		{"static-1950", fluxpower.PolicyStatic, 1950, 0},
		{"proportional", fluxpower.PolicyProportional, 0, 9600},
		{"fpp", fluxpower.PolicyFPP, 0, 9600},
	}
	fmt.Printf("%-18s %9s %9s %9s %9s\n", "policy", "gemm_s", "gemm_kJ", "qs_s", "qs_kJ")
	var ibmEnergy, fppEnergy, ibmTime, fppTime float64
	for _, sc := range scenarios {
		c, err := fluxpower.NewCluster(fluxpower.Config{
			System:          fluxpower.Lassen,
			Nodes:           8,
			Policy:          sc.policy,
			StaticNodeCapW:  sc.nodeCap,
			GlobalPowerCapW: sc.bound,
			Seed:            20240601,
			SensorNoiseW:    8,
		})
		if err != nil {
			log.Fatal(err)
		}
		gemm, err := c.Submit(fluxpower.JobSpec{App: "gemm", Nodes: 6, RepFactor: 2})
		if err != nil {
			log.Fatal(err)
		}
		qs, err := c.Submit(fluxpower.JobSpec{App: "quicksilver", Nodes: 2, SizeFactor: 27.2})
		if err != nil {
			log.Fatal(err)
		}
		if !c.RunUntilIdle(2 * time.Hour) {
			log.Fatal("jobs did not drain")
		}
		g, _ := c.Report(gemm)
		q, _ := c.Report(qs)
		fmt.Printf("%-18s %9.0f %9.0f %9.0f %9.0f\n",
			sc.name, g.ExecSec, g.EnergyPerNodeJ/1000, q.ExecSec, q.EnergyPerNodeJ/1000)
		switch sc.name {
		case "ibm-default-1200":
			ibmEnergy, ibmTime = g.EnergyPerNodeJ, g.ExecSec
		case "fpp":
			fppEnergy, fppTime = g.EnergyPerNodeJ, g.ExecSec
		}
		c.Close()
	}
	fmt.Printf("\nFPP vs IBM default: %.0f%% less energy, %.2fx faster (paper: ~20%%, 1.58x)\n",
		(ibmEnergy-fppEnergy)/ibmEnergy*100, ibmTime/fppTime)
}
